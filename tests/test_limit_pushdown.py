"""The ``limit`` capability terminal: fetch-size pushdown across ``submit``.

Covers the whole boundary crossing: the grammar accepts limited expressions
only when the wrapper declares the terminal, the rewriter folds ``MkLimit``
into the submitted expression for capable wrappers (asserted via submit-level
introspection), the SQL wrapper renders/refuses ``LIMIT`` correctly, the cost
model charges transferred rows rather than scanned rows, and the simulated
server really ships fewer rows.
"""

import pytest

from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet, grammar_for
from repro.algebra.logical import Get, Limit, Project, Select, Submit
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.errors import CapabilityError, WrapperError
from repro.optimizer.cost import CostModel, pushed_limit
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.implementation import implement
from repro.sources import RelationalEngine, SimulatedServer, TableSchema
from repro.sources.sql.engine import SqlEngine
from repro.sources.sql.parser import SqlParser
from repro.wrappers.sqlwrapper import SqlWrapper
from tests.conftest import build_paper_mediator


def _predicate(variable: str, attribute: str, value: int) -> Comparison:
    return Comparison(">", Path(Var(variable), attribute), Const(value))


class TestLimitGrammar:
    def test_declared_limit_accepts_limited_expressions(self):
        grammar = grammar_for({"get", "select", "limit"})
        expr = Limit(5, Select("x", _predicate("x", "salary", 10), Get("person0")))
        assert grammar.accepts(expr)
        assert grammar.supports("limit")
        assert "limit OPEN COUNT COMMA" in grammar.render()

    def test_undeclared_limit_rejects_limited_expressions(self):
        grammar = grammar_for({"get", "select"})
        assert not grammar.accepts(Limit(5, Get("person0")))
        assert not grammar.supports("limit")

    def test_non_composing_limit_applies_only_to_sources(self):
        grammar = grammar_for({"get", "select", "limit"}, compose=False)
        assert grammar.accepts(Limit(5, Get("person0")))
        assert not grammar.accepts(
            Limit(5, Select("x", _predicate("x", "salary", 10), Get("person0")))
        )

    def test_capability_set_full_includes_limit(self):
        assert CapabilitySet.full().supports("limit")
        assert CapabilitySet.of("get", "limit").supports("limit")


class RecordingWrapper(RelationalWrapper):
    """A relational wrapper that records every submitted expression."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.submitted: list[str] = []

    def _execute(self, expression):
        self.submitted.append(expression.to_text())
        return super()._execute(expression)


def build_recording_mediator(capabilities=None, rows=200):
    engine = RelationalEngine(name="db0")
    engine.create_table(
        "person0",
        schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
        rows=[{"id": i, "name": f"p{i}", "salary": i} for i in range(rows)],
    )
    server = SimulatedServer(name="h0", store=engine)
    wrapper = RecordingWrapper("w0", server, capabilities=capabilities)
    mediator = Mediator(name="rec")
    mediator.register_wrapper("w0", wrapper)
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, wrapper, server


class TestSubmitBoundary:
    QUERY = "select x.name from x in person0 limit 7"

    def test_capable_wrapper_receives_the_row_cap_inside_submit(self):
        mediator, wrapper, server = build_recording_mediator()
        result = mediator.query(self.QUERY)
        assert len(result.rows()) == 7
        assert len(wrapper.submitted) == 1
        assert "limit(7" in wrapper.submitted[0]
        # The source shipped only the capped rows.
        assert server.statistics.rows_returned == 7
        mediator.close()

    def test_incapable_wrapper_keeps_the_limit_at_the_mediator(self):
        mediator, wrapper, server = build_recording_mediator(
            capabilities=CapabilitySet.of("get", "project", "select")
        )
        result = mediator.query(self.QUERY)
        assert len(result.rows()) == 7
        assert all("limit(" not in text for text in wrapper.submitted)
        # Without the capability the full extent crosses the wire.
        assert server.statistics.rows_returned == 200
        mediator.close()

    def test_streaming_engine_pushes_the_same_cap(self):
        mediator, wrapper, _server = build_recording_mediator()
        result = mediator.query_stream(self.QUERY)
        assert len(list(result.iter_rows())) == 7
        assert any("limit(7" in text for text in wrapper.submitted)
        mediator.close()

    def test_submit_rechecks_the_grammar(self):
        """A hand-built limited plan against a limit-less wrapper fails loudly."""
        mediator, wrapper, _server = build_recording_mediator(
            capabilities=CapabilitySet.of("get")
        )
        with pytest.raises(CapabilityError):
            wrapper.submit(Limit(3, Get("person0")))
        mediator.close()

    def test_union_branches_carry_their_own_caps(self):
        mediator, _servers = build_paper_mediator()
        planned = mediator.explain("select x.name from x in person limit 1")
        greedy = mediator.planner.rewriter.rewrite_greedy(planned.logical)
        from repro.algebra.logical import submits_in

        # Both member-extent submits contain the pushed cap.
        submits = submits_in(greedy)
        assert {submit.source for submit in submits} == {"r0", "r1"}
        assert all("limit(1" in submit.expression.to_text() for submit in submits)
        mediator.close()


class TestSqlLimit:
    def build_sql_wrapper(self):
        engine = SqlEngine(name="sqldb")
        engine.create_table(
            "person0",
            rows=[{"id": i, "name": f"p{i}", "salary": i} for i in range(50)],
        )
        server = SimulatedServer(name="sqlhost", store=engine)
        return SqlWrapper("wsql", server)

    def test_limit_renders_as_sql(self):
        wrapper = self.build_sql_wrapper()
        expr = Limit(3, Select("x", _predicate("x", "salary", 10), Get("person0")))
        assert wrapper.to_sql(expr) == "SELECT * FROM person0 WHERE salary > 10 LIMIT 3"
        rows = wrapper.submit(expr)
        assert len(rows) == 3
        assert all(row["salary"] > 10 for row in rows)

    def test_projection_above_limit_renders(self):
        wrapper = self.build_sql_wrapper()
        expr = Project(("name",), Limit(2, Get("person0")))
        assert wrapper.to_sql(expr) == "SELECT name FROM person0 LIMIT 2"
        assert wrapper.submit(expr) == [{"name": "p0"}, {"name": "p1"}]

    def test_nested_limits_take_the_minimum(self):
        wrapper = self.build_sql_wrapper()
        assert wrapper.to_sql(Limit(5, Limit(2, Get("person0")))).endswith("LIMIT 2")

    def test_selection_above_a_limit_is_untranslatable(self):
        """Filter-then-limit is SQL's order; limit-then-filter has no rendering."""
        wrapper = self.build_sql_wrapper()
        expr = Select("x", _predicate("x", "salary", 10), Limit(3, Get("person0")))
        with pytest.raises(WrapperError):
            wrapper.to_sql(expr)

    def test_sql_parser_round_trips_limit(self):
        statement = SqlParser("SELECT name FROM person0 WHERE salary > 5 LIMIT 4").parse()
        assert statement.limit == 4
        engine = SqlEngine(name="sqldb")
        engine.create_table(
            "person0", rows=[{"id": i, "name": f"p{i}", "salary": i} for i in range(20)]
        )
        assert len(engine.execute("SELECT * FROM person0 WHERE salary > 5 LIMIT 4")) == 4


class TestCostModel:
    def test_pushed_limit_detected_through_projections(self):
        assert pushed_limit(Limit(9, Get("person0"))) == 9
        assert pushed_limit(Project(("name",), Limit(9, Get("person0")))) == 9
        assert pushed_limit(Get("person0")) is None
        # A limit below a select does not bound the output.
        assert (
            pushed_limit(Select("x", _predicate("x", "salary", 1), Limit(9, Get("p"))))
            is None
        )

    def test_exec_cost_charges_transferred_rows_when_limit_is_pushed(self):
        history = ExecCallHistory()
        # The source historically ships 10_000 rows for a bare get.
        history.record("person0", Get("person0"), 0.01, 10_000)
        model = CostModel(history=history)
        full = implement(Submit("r0", Get("person0"), extent_name="person0"))
        capped = implement(
            Submit("r0", Limit(10, Get("person0")), extent_name="person0")
        )
        full_cost = model.estimate(full)
        capped_cost = model.estimate(capped)
        assert capped_cost.rows <= 10
        # close-match history carries the 10k estimate over to the limited
        # signature; the cap is what keeps the transfer charge down.
        assert capped_cost.total() < full_cost.total()

"""Tests for the streaming execution engine and the LIMIT pipeline.

Covers the streaming semantics contract: rows appear incrementally and in
completion order, iteration is replayable (pipeline generators are never
consumed twice), ``distinct``/``flatten`` keep first-occurrence order,
``LIMIT`` edge cases behave in both engines, early termination cancels
upstream work cooperatively, and a source dying mid-stream still surfaces
through ``errors()``.
"""

import time

import pytest

from repro import GeneratorWrapper, Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import Limit, Project, Submit, Union, Get
from repro.oql.parser import parse_query
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.plancache import PlanCache
from repro.sources import RelationalEngine, SimulatedServer
from repro.sources.network import NetworkProfile
from tests.conftest import build_paper_mediator


class ScanCounter:
    """A lazy source that counts how many rows the consumer actually pulled."""

    def __init__(self, total, fail_after=None):
        self.total = total
        self.fail_after = fail_after
        self.yielded = 0
        self.opened = 0

    def __call__(self):
        self.opened += 1

        def rows():
            for i in range(self.total):
                if self.fail_after is not None and i >= self.fail_after:
                    raise RuntimeError("cursor lost mid-stream")
                self.yielded += 1
                yield {"id": i, "name": f"p{i}", "salary": i}

        return rows()


def build_generator_mediator(scan, extent="person0", capabilities=None, **mediator_kwargs):
    mediator = Mediator(name="gen", **mediator_kwargs)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.register_wrapper(
        "w0",
        GeneratorWrapper(
            "w0",
            {extent: scan},
            attributes={extent: ["id", "name", "salary"]},
            capabilities=capabilities,
        ),
    )
    mediator.create_repository("r0")
    mediator.add_extent(extent, "Person", "w0", "r0")
    return mediator


class TestIncrementalResults:
    def test_iter_rows_is_incremental_and_replayable(self):
        scan = ScanCounter(1000)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select x.name from x in person")
        iterator = result.iter_rows()
        first = next(iterator)
        assert first == "p0"
        # Lazy end to end: only a handful of source rows were pulled so far.
        assert scan.yielded < 1000
        # A second iteration replays the buffered prefix and continues the
        # live tail -- nothing is consumed twice, nothing is lost.
        assert list(result.iter_rows()) == [f"p{i}" for i in range(1000)]
        assert list(result.iter_rows()) == [f"p{i}" for i in range(1000)]
        mediator.close()

    def test_rows_after_partial_iteration_sees_everything(self):
        mediator = build_generator_mediator(ScanCounter(50))
        result = mediator.query_stream("select x.name from x in person")
        taken = [row for _, row in zip(range(10), result.iter_rows())]
        assert len(taken) == 10
        assert len(result.rows()) == 50
        assert result.complete()
        mediator.close()

    def test_materialized_surface_matches_barrier_engine(self):
        mediator, _ = build_paper_mediator()
        streamed = mediator.query_stream("select x.name from x in person where x.salary > 10")
        barrier = mediator.query("select x.name from x in person where x.salary > 10")
        assert streamed.answer() == barrier.answer()
        assert sorted(streamed.rows()) == sorted(barrier.rows())
        mediator.close()

    def test_scalar_queries_come_back_materialized(self):
        mediator, _ = build_paper_mediator()
        result = mediator.query_stream("sum(select x.salary from x in person)")
        assert result.stream is None
        assert result.answer() == 250
        mediator.close()


class TestOrderingStability:
    def test_distinct_keeps_first_occurrence_order(self):
        def scan():
            for name in ["b", "a", "b", "c", "a", "d"]:
                yield {"id": 0, "name": name, "salary": 1}

        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select distinct x.name from x in person")
        assert list(result.iter_rows()) == ["b", "a", "c", "d"]
        mediator.close()

    def test_flatten_preserves_element_order(self):
        mediator, _ = build_paper_mediator()
        result = mediator.query_stream(
            "flatten(bag(bag(1, 2), bag(3), bag(4, 5)))"
        )
        assert list(result.iter_rows()) == [1, 2, 3, 4, 5]
        mediator.close()


class TestLimitExecution:
    QUERY = "select x.name from x in person limit 3"

    def test_limit_truncates_in_both_engines(self):
        mediator, _ = build_paper_mediator()
        assert len(mediator.query(self.QUERY).rows()) == 2  # only 2 rows exist
        assert len(mediator.query("select x.name from x in person0 limit 1").rows()) == 1
        streamed = mediator.query_stream("select x.name from x in person0 limit 1")
        assert len(list(streamed.iter_rows())) == 1
        mediator.close()

    def test_limit_zero_yields_nothing_and_scans_nothing(self):
        scan = ScanCounter(100)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select x.name from x in person limit 0")
        assert list(result.iter_rows()) == []
        assert scan.yielded == 0
        assert not result.is_partial
        mediator.close()

    def test_limit_larger_than_source_returns_everything(self):
        mediator = build_generator_mediator(ScanCounter(5))
        result = mediator.query_stream("select x.name from x in person limit 50")
        assert len(list(result.iter_rows())) == 5
        assert not result.is_partial
        mediator.close()

    def test_limit_works_without_pushdown(self):
        """A get-only wrapper: everything (limit included) runs at the mediator."""
        from repro.baselines import GetOnlyWrapper

        engine = RelationalEngine(name="db0")
        engine.create_table(
            "person0", rows=[{"id": i, "name": f"p{i}", "salary": i} for i in range(20)]
        )
        server = SimulatedServer(name="h0", store=engine)
        mediator = Mediator(name="nopush")
        mediator.register_wrapper(
            "w0", GetOnlyWrapper(RelationalWrapper("inner", server))
        )
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent("person0", "Person", "w0", "r0")
        query = "select x.name from x in person where x.salary > 5 limit 4"
        assert len(mediator.query(query).rows()) == 4
        assert len(list(mediator.query_stream(query).iter_rows())) == 4
        mediator.close()

    def test_limit_pushes_through_projection_and_union(self):
        """The rewriter pushes the limit below apply/project and caps every
        union branch (the cost-based search may still prefer a cheaper
        shape; the *rules* must offer the pushed-down one)."""
        mediator, _ = build_paper_mediator()
        planned = mediator.explain("select x.name from x in person limit 1")
        greedy = mediator.planner.rewriter.rewrite_greedy(planned.logical)
        text = greedy.to_text()
        # The outer limit moved below the apply and caps each union branch.
        assert text.startswith("apply(")
        assert text.count("limit(1") == 3
        # Whatever shape wins the cost search, the limit itself survives.
        assert "limit(1" in planned.optimized.logical.to_text()
        mediator.close()

    def test_early_termination_cancels_the_scan(self):
        # No limit capability: the limit stays at the mediator, so a
        # satisfied mklimit must cancel the in-flight call cooperatively.
        scan = ScanCounter(100_000)
        mediator = build_generator_mediator(
            scan, capabilities=CapabilitySet.of("get", "project", "select")
        )
        result = mediator.query_stream(
            "select x.name from x in person where x.salary > 10 limit 5"
        )
        assert list(result.iter_rows()) == [f"p{i}" for i in range(11, 16)]
        # The 100k-row scan was abandoned after a handful of rows.
        assert scan.yielded < 100
        report = result.reports[0]
        assert report.cancelled and report.available
        assert not result.is_partial and result.errors() == {}
        mediator.close()

    def test_pushed_limit_ends_the_scan_without_cancellation(self):
        # With the limit capability the cap crosses the submit boundary: the
        # source stops on its own and the call completes normally.
        scan = ScanCounter(100_000)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream(
            "select x.name from x in person where x.salary > 10 limit 5"
        )
        assert list(result.iter_rows()) == [f"p{i}" for i in range(11, 16)]
        assert scan.yielded < 100
        report = result.reports[0]
        assert report.available and not report.cancelled
        assert not result.is_partial and result.errors() == {}
        mediator.close()

    def test_close_cancels_midway(self):
        scan = ScanCounter(100_000)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select x.name from x in person")
        taken = [row for _, row in zip(range(7), result.iter_rows())]
        assert len(taken) == 7
        result.close()
        assert scan.yielded < 100
        # close() folds the outcome in and detaches the finished stream.
        assert result.stream is None
        assert len(result.rows()) == 7
        mediator.close()


class TestCompletionOrderUnion:
    def test_fast_source_streams_before_the_slow_one_answers(self):
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=0.5)
        servers[0].real_sleep = True
        started = time.monotonic()
        result = mediator.query_stream("select x.name from x in person", timeout=5.0)
        first = next(result.iter_rows())
        elapsed = time.monotonic() - started
        assert first == "Sam"  # r1 is instant; r0 sleeps half a second
        assert elapsed < 0.4
        # Draining still waits for (and includes) the slow source.
        assert sorted(result.rows()) == ["Mary", "Sam"]
        assert result.complete()
        mediator.close()

    def test_limit_satisfied_by_fast_source_cancels_the_slow_one(self):
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=5.0)
        servers[0].real_sleep = True
        started = time.monotonic()
        result = mediator.query_stream(
            "select x.name from x in person limit 1", timeout=30.0
        )
        rows = list(result.iter_rows())
        elapsed = time.monotonic() - started
        assert rows == ["Sam"]
        assert elapsed < 1.0  # nowhere near the 5s source
        assert not result.is_partial
        cancelled = [r for r in result.reports if r.cancelled]
        assert any(r.extent_name == "person0" for r in cancelled)
        mediator.close()


class TestMidStreamFailure:
    def test_source_dying_mid_stream_reports_errors(self):
        scan = ScanCounter(100, fail_after=10)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select x.name from x in person")
        rows = list(result.iter_rows())
        # The rows delivered before the crash are kept ...
        assert rows == [f"p{i}" for i in range(10)]
        # ... and the failure is still reported, partial-answer style.
        assert result.is_partial
        assert not result.complete()
        assert result.unavailable_sources == ("person0",)
        assert "RuntimeError" in result.errors()["person0"]
        mediator.close()

    def test_unavailable_source_contributes_no_rows_but_reports(self):
        mediator, servers = build_paper_mediator()
        servers[0].take_down()
        result = mediator.query_stream("select x.name from x in person")
        assert list(result.iter_rows()) == ["Sam"]
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)
        assert "person0" in result.errors()
        mediator.close()

    def test_timeout_reports_like_the_barrier_engine(self):
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=2.0)
        servers[0].real_sleep = True
        result = mediator.query_stream("select x.name from x in person", timeout=0.15)
        assert list(result.iter_rows()) == ["Sam"]
        assert result.is_partial
        assert "timed out" in result.errors()["person0"]
        mediator.close()


class TestCooperativeCancellation:
    def test_timed_out_call_releases_its_worker_slot(self):
        """With a single-worker pool, a zombie would serialize the next query."""
        mediator, servers = build_paper_mediator(max_parallel_calls=1)
        servers[0].network = NetworkProfile(base_latency=3.0)
        servers[0].real_sleep = True
        result = mediator.query(
            "select x.name from x in person0 where x.salary > 10", timeout=0.15
        )
        assert result.is_partial
        # The write-off set the call's cancellation event; the worker wakes
        # from the simulated latency sleep immediately instead of holding the
        # pool's only slot for the remaining ~2.85s.
        servers[0].network = NetworkProfile.instant()
        started = time.monotonic()
        second = mediator.query("select x.name from x in person1")
        elapsed = time.monotonic() - started
        assert second.rows() == ["Sam"]
        assert elapsed < 1.0
        mediator.close()

    def test_cancelled_call_is_not_recorded_as_failure(self):
        """A limit-cancelled call must not poison the availability estimate."""
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=1.0)
        servers[0].real_sleep = True
        failures_before = mediator.history.failures
        result = mediator.query_stream(
            "select x.name from x in person limit 1", timeout=10.0
        )
        assert list(result.iter_rows()) == ["Sam"]
        mediator.close()  # reap the cancelled worker
        assert mediator.history.failures == failures_before
        assert mediator.history.availability("person0") == 1.0


class TestPlanCacheNormalization:
    def test_comment_and_case_variants_hit_the_same_entry(self):
        mediator, _ = build_paper_mediator()
        mediator.query("select x.name from x in person where x.salary > 10")
        stats = mediator.statistics()
        assert stats["plan_cache_hits"] == 0
        mediator.query(
            "SELECT x.name FROM x IN person // cached?\nWHERE x.salary > 10"
        )
        stats = mediator.statistics()
        assert stats["plan_cache_hits"] == 1
        assert stats["plan_cache_entries"] == 1
        mediator.close()

    def test_unparseable_text_falls_back_to_whitespace_normalization(self):
        cache = PlanCache()
        cache.put("not   oql \t at all", 1, "plan")
        assert cache.get("not oql at all", 1) == "plan"

    def test_string_literals_stay_significant(self):
        cache = PlanCache()
        cache.put('select x from x in person where x.name = "Mary  S"', 1, "a")
        assert cache.get('select x from x in person where x.name = "Mary S"', 1) is None


class TestAvailabilityEstimate:
    def test_failures_lower_the_estimate_and_successes_restore_it(self):
        history = ExecCallHistory()
        assert history.availability("person0") == 1.0
        expr = Get("person0")
        for _ in range(5):
            history.record_failure("person0", expr, 0.01)
        flaky = history.availability("person0")
        assert flaky < 0.5
        for _ in range(10):
            history.record("person0", expr, 0.01, 10)
        assert history.availability("person0") > flaky

    def test_cost_model_penalizes_flaky_sources(self):
        from repro.optimizer.cost import CostModel
        from repro.optimizer.implementation import implement

        history = ExecCallHistory()
        model = CostModel(history=history)
        plan_flaky = implement(Submit("r0", Get("person0"), extent_name="person0"))
        plan_solid = implement(Submit("r1", Get("person1"), extent_name="person1"))
        # Same latency/row observations for both extents ...
        for extent, expr in (("person0", Get("person0")), ("person1", Get("person1"))):
            history.record(extent, expr, 0.05, 100)
        baseline_flaky = model.estimate(plan_flaky).total()
        assert baseline_flaky == pytest.approx(model.estimate(plan_solid).total())
        # ... but person0 keeps failing: its calls now look more expensive.
        for _ in range(5):
            history.record_failure("person0", Get("person0"), 0.05)
        assert model.estimate(plan_flaky).total() > model.estimate(plan_solid).total()


class TestPartialAnswersWithLimit:
    def test_partial_query_with_limit_reparses(self):
        mediator, servers = build_paper_mediator()
        servers[0].take_down()
        result = mediator.query("select x.name from x in person limit 5")
        assert result.is_partial
        assert "limit" in result.partial_query
        parse_query(result.partial_query)  # must stay a legal OQL query

    def test_partial_query_text_reevaluates_exactly(self):
        """The answer *is* a query: re-running the text equals resubmitting
        the plan, even with the limit pushed inside the submit."""
        mediator, servers = build_paper_mediator()
        servers[0].take_down()
        result = mediator.query("select x.name from x in person0 limit 1")
        assert result.is_partial
        servers[0].bring_up()
        assert mediator.query(result.partial_query).rows() == ["Mary"]
        assert mediator.resubmit(result).rows() == ["Mary"]
        mediator.close()

    def test_partial_query_with_distinct_and_limit_reparses(self):
        """select distinct ... limit n must degrade, not crash the unparser."""
        mediator, servers = build_paper_mediator()
        servers[0].take_down()
        result = mediator.query("select distinct x.name from x in person limit 3")
        assert result.is_partial
        assert "distinct" in result.partial_query and "limit 3" in result.partial_query
        parse_query(result.partial_query)
        servers[0].bring_up()
        resubmitted = mediator.resubmit(result)
        assert sorted(resubmitted.rows()) == ["Mary", "Sam"]
        mediator.close()

    def test_limit_plan_round_trips_physical_to_logical(self):
        from repro.optimizer.implementation import implement
        from repro.runtime.partial_eval import PartialAnswerBuilder

        logical = Limit(
            2,
            Union(
                (
                    Project(("name",), Submit("r0", Get("person0"), extent_name="person0")),
                    Submit("r1", Get("person1"), extent_name="person1"),
                )
            ),
        )
        builder = PartialAnswerBuilder()
        assert builder.to_logical(implement(logical), {}) == logical


class TestAbortedStreams:
    def test_mediator_side_error_reraises_on_every_consumption(self):
        """An aborted stream must never replay as a complete-looking answer."""
        from repro.errors import QueryExecutionError

        mediator = build_generator_mediator(ScanCounter(10))
        # The apply runs at the mediator and crashes on the first row
        # (division by zero, wrapped by the expression evaluator).
        result = mediator.query_stream(
            "select x.salary / (x.salary - x.salary) from x in person"
        )
        with pytest.raises(QueryExecutionError):
            list(result.iter_rows())
        assert result.stream.finished
        with pytest.raises(QueryExecutionError):
            result.rows()
        with pytest.raises(QueryExecutionError):
            list(result.iter_rows())
        mediator.close()

    def test_sources_contacted_counts_issued_calls_up_front(self):
        mediator, _ = build_paper_mediator()
        result = mediator.query_stream("select x.name from x in person")
        assert result.sources_contacted() == 2  # both execs already dispatched
        result.rows()
        assert result.sources_contacted() == 2
        mediator.close()

    def test_abandoned_iteration_is_resumable_not_cancelled(self):
        """Pausing is not closing: the stream stays consumable."""
        scan = ScanCounter(100)
        mediator = build_generator_mediator(scan)
        result = mediator.query_stream("select x.name from x in person")
        iterator = result.iter_rows()
        next(iterator)
        del iterator  # abandon without close()
        assert not result.stream.finished
        assert len(result.rows()) == 100
        mediator.close()


class TestDeadlineDuringDrain:
    def test_slow_cursor_is_written_off_at_the_deadline(self):
        """The designated time period bounds lazy drains, not just exec opens."""

        def dripping_scan():
            for i in range(100):
                time.sleep(0.05)
                yield {"id": i, "name": f"p{i}", "salary": i}

        mediator = build_generator_mediator(dripping_scan)
        started = time.monotonic()
        result = mediator.query_stream("select x.name from x in person", timeout=0.3)
        rows = list(result.iter_rows())
        elapsed = time.monotonic() - started
        assert 0 < len(rows) < 100  # some rows arrived, the drain was cut off
        assert elapsed < 2.0
        assert result.is_partial
        assert "timed out" in result.errors()["person0"]
        mediator.close()

    def test_one_call_records_exactly_one_history_observation(self):
        """A drained lazy cursor: one success record, availability stays 1.0."""
        mediator = build_generator_mediator(ScanCounter(20))
        before = mediator.history.recorded_calls()
        result = mediator.query_stream("select x.name from x in person")
        assert len(result.rows()) == 20
        assert mediator.history.recorded_calls() == before + 1
        assert mediator.history.failures == 0
        assert mediator.history.availability("person0") == 1.0
        mediator.close()


class TestLimitSoftKeyword:
    def test_attribute_named_limit_stays_queryable(self):
        def scan():
            yield {"id": 1, "name": "a", "salary": 9, "limit": 5}

        mediator = Mediator(name="soft")
        mediator.define_interface(
            "Quota",
            [("id", "Long"), ("name", "String"), ("salary", "Short"), ("limit", "Long")],
            extent_name="quota",
        )
        mediator.register_wrapper("w0", GeneratorWrapper("w0", {"quota0": scan}))
        mediator.create_repository("r0")
        mediator.add_extent("quota0", "Quota", "w0", "r0")
        result = mediator.query("select x.limit from x in quota where x.limit > 3")
        assert result.rows() == [5]
        both = mediator.query("select x.limit from x in quota limit 1")
        assert both.rows() == [5]
        mediator.close()

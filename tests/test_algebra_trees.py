"""Tests for logical and physical operator trees."""

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.algebra.expressions import Comparison, Const, Path, Var


def paper_logical_plan() -> log.LogicalOp:
    """The paper's example: union of two projected submits."""
    return log.Union(
        (
            log.Project(("name",), log.Submit("r0", log.Get("person0"), extent_name="person0")),
            log.Project(("name",), log.Submit("r1", log.Get("person1"), extent_name="person1")),
        )
    )


class TestLogicalTrees:
    def test_to_text_matches_paper_notation(self):
        plan = paper_logical_plan()
        assert plan.to_text() == (
            "union(project(name, submit(r0, get(person0))), "
            "project(name, submit(r1, get(person1))))"
        )

    def test_equality_is_structural(self):
        assert paper_logical_plan() == paper_logical_plan()
        other = log.Project(("name",), log.Get("person0"))
        assert paper_logical_plan() != other

    def test_walk_visits_all_nodes(self):
        kinds = [node.op_name for node in log.walk(paper_logical_plan())]
        assert kinds.count("submit") == 2
        assert kinds.count("project") == 2
        assert kinds[0] == "union"

    def test_operators_used_and_contains_submit(self):
        plan = paper_logical_plan()
        assert plan.operators_used() == {"union", "project", "submit", "get"}
        assert plan.contains_submit()
        assert not log.Get("person0").contains_submit()

    def test_submits_in_and_sources_referenced(self):
        plan = paper_logical_plan()
        assert [s.source for s in log.submits_in(plan)] == ["r0", "r1"]
        assert log.sources_referenced(plan) == {"r0", "r1"}

    def test_with_children_rebuilds_nodes(self):
        plan = paper_logical_plan()
        swapped = plan.with_children(tuple(reversed(plan.children())))
        assert isinstance(swapped, log.Union)
        assert swapped.children()[0].children()[0].source == "r1"

    def test_transform_bottom_up_replaces_nodes(self):
        plan = paper_logical_plan()

        def visit(node: log.LogicalOp) -> log.LogicalOp:
            if isinstance(node, log.Get):
                return log.Get(node.collection.upper())
            return node

        transformed = log.transform_bottom_up(plan, visit)
        assert "PERSON0" in transformed.to_text()
        # The original tree is untouched.
        assert "PERSON0" not in plan.to_text()

    def test_select_and_apply_text(self):
        predicate = Comparison(">", Path(Var("x"), "salary"), Const(10))
        select = log.Select("x", predicate, log.Get("person0"))
        assert select.to_text() == "select(x: x.salary > 10, get(person0))"
        apply = log.Apply("x", Path(Var("x"), "name"), select)
        assert apply.to_text().startswith("apply(x: x.name")

    def test_join_attributes(self):
        join = log.Join(log.Get("a"), log.Get("b"), "dept")
        assert join.join_attributes() == ("dept", "dept")
        join_pair = log.Join(log.Get("a"), log.Get("b"), ("id", "pid"))
        assert join_pair.join_attributes() == ("id", "pid")

    def test_bag_literal_round_trip(self):
        literal = log.BagLiteral.from_bag(["Sam", "Mary"])
        assert literal.to_bag().sorted(key=str) == ["Mary", "Sam"]

    def test_bindjoin_text_and_children(self):
        condition = Comparison("=", Path(Var("x"), "id"), Path(Var("y"), "id"))
        bind = log.BindJoin(log.Get("a"), log.Get("b"), "x", "y", condition=condition)
        assert bind.children() == (log.Get("a"), log.Get("b"))
        rebuilt = bind.with_children((log.Get("c"), log.Get("d")))
        assert rebuilt.condition == condition


class TestPhysicalTrees:
    def paper_physical_plan(self) -> phys.PhysicalOp:
        """The paper's physical example: mkunion(exec(...), mkproj(exec(...)))."""
        return phys.MkUnion(
            (
                phys.Exec(
                    phys.Field("r0"),
                    log.Project(("name",), log.Get("person0")),
                    extent_name="person0",
                ),
                phys.MkProj(
                    ("name",),
                    phys.Exec(phys.Field("r1"), log.Get("person1"), extent_name="person1"),
                ),
            )
        )

    def test_to_text_matches_paper_notation(self):
        assert self.paper_physical_plan().to_text() == (
            "mkunion(exec(field(r0), project(name, get(person0))), "
            "mkproj(name, exec(field(r1), get(person1))))"
        )

    def test_execs_in_finds_every_call(self):
        execs = phys.execs_in(self.paper_physical_plan())
        assert [e.extent_name for e in execs] == ["person0", "person1"]

    def test_exec_keeps_logical_argument(self):
        exec_node = phys.execs_in(self.paper_physical_plan())[0]
        assert isinstance(exec_node.expression, log.LogicalOp)

    def test_equality_and_with_children(self):
        plan = self.paper_physical_plan()
        assert plan == self.paper_physical_plan()
        swapped = plan.with_children(tuple(reversed(plan.children())))
        assert swapped != plan

    def test_join_algorithm_nodes(self):
        left = phys.MkBag((1,))
        right = phys.MkBag((2,))
        assert phys.HashJoin(left, right, "id").join_attributes() == ("id", "id")
        assert phys.NestedLoopJoin(left, right, ("a", "b")).join_attributes() == ("a", "b")

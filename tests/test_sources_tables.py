"""Tests for the in-memory table and relational-engine substrates."""

import pytest

from repro.errors import QueryExecutionError, SchemaError
from repro.sources.relational_engine import RelationalEngine
from repro.sources.table import Column, Table, TableSchema


class TestTableSchema:
    def test_of_builds_typed_and_untyped_columns(self):
        schema = TableSchema.of("name", ("salary", int))
        assert schema.column_names() == ["name", "salary"]
        assert schema.columns[1].py_type is int

    def test_validate_row_rejects_missing_column(self):
        schema = TableSchema.of(("name", str), ("salary", int))
        with pytest.raises(SchemaError):
            schema.validate_row({"name": "Mary"})

    def test_validate_row_rejects_bad_type(self):
        schema = TableSchema.of(("salary", int))
        with pytest.raises(SchemaError):
            schema.validate_row({"salary": "lots"})

    def test_float_column_accepts_int(self):
        Column("value", float).check(3)

    def test_untyped_column_accepts_anything(self):
        Column("x").check(object())


class TestTable:
    def test_insert_and_iterate(self):
        table = Table("person", rows=[{"name": "Mary"}])
        table.insert({"name": "Sam"})
        assert len(table) == 2
        assert sorted(row["name"] for row in table) == ["Mary", "Sam"]

    def test_rows_are_copies(self):
        table = Table("person", rows=[{"name": "Mary"}])
        next(table.rows())["name"] = "Hacked"
        assert list(table.rows())[0]["name"] == "Mary"

    def test_schema_is_enforced_on_insert(self):
        table = Table("person", schema=TableSchema.of(("salary", int)))
        with pytest.raises(SchemaError):
            table.insert({"salary": "x"})

    def test_delete_where(self):
        table = Table("person", rows=[{"salary": 10}, {"salary": 100}])
        removed = table.delete_where(lambda row: row["salary"] < 50)
        assert removed == 1
        assert len(table) == 1

    def test_column_values_and_cardinality(self):
        table = Table("person", rows=[{"salary": 10}, {"salary": 20}])
        assert table.column_values("salary") == [10, 20]
        assert table.cardinality() == 2

    def test_column_values_unknown_column_raises(self):
        table = Table("person", rows=[{"salary": 10}])
        with pytest.raises(QueryExecutionError):
            table.column_values("age")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("")


class TestRelationalEngine:
    def engine(self):
        engine = RelationalEngine("db")
        engine.create_table(
            "employee",
            rows=[
                {"name": "Mary", "dept": "db", "salary": 200},
                {"name": "Sam", "dept": "os", "salary": 50},
                {"name": "Ana", "dept": "db", "salary": 120},
            ],
        )
        engine.create_table(
            "manager",
            rows=[{"name": "Pat", "dept": "db"}, {"name": "Lou", "dept": "ai"}],
        )
        return engine

    def test_create_and_scan(self):
        engine = self.engine()
        assert len(engine.scan("employee")) == 3
        assert engine.has_table("manager")
        assert set(engine.table_names()) == {"employee", "manager"}

    def test_duplicate_table_raises(self):
        engine = self.engine()
        with pytest.raises(SchemaError):
            engine.create_table("employee")

    def test_unknown_table_raises(self):
        with pytest.raises(QueryExecutionError):
            self.engine().scan("nope")

    def test_drop_table(self):
        engine = self.engine()
        engine.drop_table("manager")
        assert not engine.has_table("manager")
        with pytest.raises(SchemaError):
            engine.drop_table("manager")

    def test_select_and_project(self):
        engine = self.engine()
        rows = engine.select(engine.scan("employee"), lambda row: row["salary"] > 100)
        assert {row["name"] for row in rows} == {"Mary", "Ana"}
        projected = engine.project(rows, ["name"])
        assert projected == [{"name": "Mary"}, {"name": "Ana"}] or projected == [
            {"name": "Ana"},
            {"name": "Mary"},
        ]

    def test_project_unknown_column_raises(self):
        engine = self.engine()
        with pytest.raises(QueryExecutionError):
            engine.project(engine.scan("employee"), ["age"])

    def test_join_on_shared_column(self):
        engine = self.engine()
        joined = engine.join(engine.scan("employee"), engine.scan("manager"), on="dept")
        # Only the db department matches a manager.
        assert {row["name"] for row in joined} == {"Mary", "Ana"}
        assert all(row["dept"] == "db" for row in joined)

    def test_join_on_column_pair(self):
        engine = self.engine()
        joined = engine.join(
            engine.scan("employee"), engine.scan("manager"), on=("dept", "dept")
        )
        assert len(joined) == 2

    def test_union_is_additive(self):
        engine = self.engine()
        rows = engine.union(engine.scan("employee"), engine.scan("employee"))
        assert len(rows) == 6

    def test_statistics(self):
        stats = self.engine().statistics()
        assert stats == {"employee": 3, "manager": 2}

"""Documentation reference check: links and file mentions must not rot.

Scans every markdown file in the repository root and ``docs/`` for

* relative markdown links (``[text](path)``) -- the target must exist;
* backtick-quoted repository paths (``src/...``, ``tests/...``,
  ``benchmarks/...``, ``examples/...``, ``docs/...``) -- the file must
  exist;
* backtick-quoted ``repro.*`` module dotted paths -- the module must exist
  under ``src/``.

This is the documented-entry-points-can't-rot counterpart of the CI
examples-smoke job: renaming a module or benchmark without updating the
docs fails the build.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [*REPO.glob("*.md"), *(REPO / "docs").glob("*.md")],
    key=lambda path: path.name,
)
#: ISSUE/CHANGES describe work (files may not exist yet); SNIPPETS/PAPERS
#: are generated corpora whose code blocks pattern-match as links.
EXCLUDED = {"ISSUE.md", "CHANGES.md", "SNIPPETS.md", "PAPERS.md", "PAPER.md"}

MARKDOWN_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(#[^)\s]*)?\)")
REPO_PATH = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_./-]+\.(?:py|md))`"
)
MODULE_PATH = re.compile(r"`(repro(?:\.[a-z_][a-z0-9_]*)+)`")


def doc_files():
    files = [path for path in DOC_FILES if path.name not in EXCLUDED]
    assert files, "no markdown files found -- is the repository layout intact?"
    return files


@pytest.mark.parametrize("doc", doc_files(), ids=lambda path: path.name)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative link(s): {broken}"


@pytest.mark.parametrize("doc", doc_files(), ids=lambda path: path.name)
def test_mentioned_repository_files_exist(doc):
    text = doc.read_text(encoding="utf-8")
    missing = sorted(
        {
            mention
            for mention in REPO_PATH.findall(text)
            if not (REPO / mention).exists()
        }
    )
    assert not missing, f"{doc.name}: references missing file(s): {missing}"


@pytest.mark.parametrize("doc", doc_files(), ids=lambda path: path.name)
def test_mentioned_modules_exist(doc):
    text = doc.read_text(encoding="utf-8")
    missing = []
    for dotted in sorted(set(MODULE_PATH.findall(text))):
        relative = Path("src", *dotted.split("."))
        if not (
            (REPO / relative).with_suffix(".py").exists()
            or (REPO / relative / "__init__.py").exists()
        ):
            missing.append(dotted)
    assert not missing, f"{doc.name}: references missing module(s): {missing}"


def test_architecture_doc_covers_every_package():
    """The package map must name every top-level package under src/repro."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    packages = sorted(
        child.name
        for child in (REPO / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )
    unmapped = [name for name in packages if f"repro.{name}" not in text]
    assert not unmapped, f"docs/ARCHITECTURE.md misses package(s): {unmapped}"

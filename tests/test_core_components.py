"""Tests for the registry, catalog, session, baselines and mediator composition."""

import pytest

from repro import Bag, Catalog, Mediator, MediatorWrapper, RelationalWrapper, Session
from repro.baselines import (
    BlockingSemantics,
    GetOnlyWrapper,
    UnifiedSchemaIntegrator,
    complete_answer_probability,
)
from repro.errors import NameResolutionError, SchemaError, UnavailableSourceError
from tests.conftest import build_paper_mediator, build_person_engine


class TestRegistry:
    def test_schema_version_bumps_on_extent_changes(self, paper_mediator):
        registry = paper_mediator.registry
        version = registry.schema_version
        registry.add_extent("extra", "Person", "w0", "r0", source_collection="person0")
        assert registry.schema_version == version + 1
        registry.drop_extent("extra")
        assert registry.schema_version == version + 2

    def test_resolve_collection_kinds(self, paper_mediator):
        registry = paper_mediator.registry
        assert registry.resolve_collection("person0").kind == "extents"
        assert registry.resolve_collection("person").kind == "extents"
        assert registry.resolve_collection("metaextent").kind == "metaextent"
        paper_mediator.define_view("v", "select x from x in person")
        assert registry.resolve_collection("v").kind == "view"
        with pytest.raises(NameResolutionError):
            registry.resolve_collection("nothing")

    def test_interface_name_is_an_alias_for_its_extent(self, paper_mediator):
        resolved = paper_mediator.registry.resolve_collection("Person")
        assert {meta.name for meta in resolved.extents} == {"person0", "person1"}

    def test_metaextent_rows_expose_wrapper_and_repository(self, paper_mediator):
        rows = paper_mediator.registry.metaextent_rows()
        by_name = {row["name"]: row for row in rows}
        assert by_name["person0"]["repository"] == "r0"
        assert by_name["person1"]["wrapper"] == "w1"

    def test_plan_cache_is_invalidated_by_schema_change(self, paper_mediator):
        query = "select x.name from x in person"
        paper_mediator.query(query)
        paper_mediator.query(query)
        stats = paper_mediator.statistics()
        assert stats["plan_cache_hits"] >= 1
        _, server = build_person_engine(2, [{"id": 5, "name": "Olga", "salary": 20}])
        paper_mediator.register_wrapper("w2", RelationalWrapper("w2", server))
        paper_mediator.create_repository("r2")
        paper_mediator.add_extent("person2", "Person", "w2", "r2")
        result = paper_mediator.query(query)
        assert result.data == Bag(["Mary", "Sam", "Olga"])

    def test_duplicate_definitions_are_rejected(self, paper_mediator):
        with pytest.raises(SchemaError):
            paper_mediator.create_repository("r0")
        with pytest.raises(SchemaError):
            paper_mediator.add_extent("person0", "Person", "w0", "r0")


class TestCatalog:
    def test_registering_components_and_overview(self, paper_mediator):
        catalog = Catalog()
        catalog.register_mediator(paper_mediator)
        catalog.register_wrapper("w0", paper_mediator.registry.wrapper_object("w0"))
        catalog.register_repository(paper_mediator.registry.schema.repository("r0"))
        overview = catalog.overview()
        assert overview["mediators"] == ["paper"]
        assert overview["wrappers"] == ["w0"]
        assert overview["repositories"] == ["r0"]

    def test_find_and_interface_lookup(self, paper_mediator):
        catalog = Catalog()
        catalog.register_mediator(paper_mediator)
        assert catalog.find("mediator", "paper") is not None
        assert catalog.find("mediator", "ghost") is None
        assert catalog.mediators_serving_interface("Person") == ["paper"]
        assert catalog.mediators_serving_interface("Sensor") == []


class TestSession:
    def test_session_records_history(self, paper_mediator):
        session = Session(paper_mediator)
        session.query("select x.name from x in person")
        assert session.last() is not None
        assert len(session.history) == 1
        assert session.partial_answers() == []

    def test_query_with_retry_recovers_after_source_returns(self):
        mediator, servers = build_paper_mediator()
        session = Session(mediator)
        servers[0].availability.fail_next(1)
        result = session.query_with_retry(
            "select x.name from x in person where x.salary > 10", retries=2
        )
        assert not result.is_partial
        assert result.data == Bag(["Mary", "Sam"])
        assert len(session.partial_answers()) == 1


class TestBaselines:
    def test_complete_answer_probability_decays_with_sources(self):
        assert complete_answer_probability(0.95, 1) == pytest.approx(0.95)
        assert complete_answer_probability(0.95, 32) < 0.25
        assert complete_answer_probability(1.0, 100) == 1.0
        with pytest.raises(ValueError):
            complete_answer_probability(1.5, 2)

    def test_blocking_semantics_raises_when_a_source_is_down(self):
        mediator, servers = build_paper_mediator()
        blocking = BlockingSemantics(mediator)
        servers[0].take_down()
        with pytest.raises(UnavailableSourceError):
            blocking.query("select x.name from x in person")
        assert blocking.answered("select x.name from x in person") is False
        servers[0].bring_up()
        assert blocking.answered("select x.name from x in person") is True

    def test_blocking_semantics_can_return_empty_results_instead(self):
        mediator, servers = build_paper_mediator()
        blocking = BlockingSemantics(mediator, raise_on_unavailable=False)
        servers[1].take_down()
        result = blocking.query("select x.name from x in person")
        assert result.is_partial and result.data is None

    def test_unified_schema_integration_cost_grows_with_sources(self):
        integrator = UnifiedSchemaIntegrator()
        costs = [
            integrator.integrate_source(f"s{i}", "Person", ("name", "salary")).statements_touched
            for i in range(10)
        ]
        assert costs[-1] > costs[0]
        assert integrator.total_statements() == sum(costs)
        assert len(integrator.cumulative_statements()) == 10
        assert integrator.classes()[0].member_sources == [f"s{i}" for i in range(10)]

    def test_unified_schema_counts_conflicts(self):
        integrator = UnifiedSchemaIntegrator()
        report = integrator.integrate_source(
            "s0", "Person", ("name", "salary"), conflicting_attributes=3
        )
        assert report.conflicts_resolved == 3


class TestDistributedMediators:
    def test_mediator_wrapper_composes_mediators(self, paper_mediator):
        """Figure 1: a parent mediator federates a child mediator as one source."""
        parent = Mediator(name="parent")
        parent.register_wrapper("child", MediatorWrapper("child", paper_mediator))
        parent.create_repository("child_repo", host="child-host")
        parent.define_interface(
            "Person", [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        # The parent extent mirrors the child's *implicit* extent "person",
        # which unions the child's own data sources.
        parent.add_extent("child_people", "Person", "child", "child_repo",
                          source_collection="person")
        result = parent.query("select x.name from x in person where x.salary > 10")
        assert result.data == Bag(["Mary", "Sam"])

    def test_child_mediator_unavailability_yields_partial_answer(self, paper_mediator):
        parent = Mediator(name="parent")
        wrapper = MediatorWrapper("child", paper_mediator)
        parent.register_wrapper("child", wrapper)
        parent.create_repository("child_repo")
        parent.define_interface("Person", [("name", "String")], extent_name="person")
        parent.add_extent("child_people", "Person", "child", "child_repo",
                          source_collection="person")
        wrapper.set_available(False)
        result = parent.query("select x.name from x in person")
        assert result.is_partial
        wrapper.set_available(True)
        recovered = parent.resubmit(result)
        assert recovered.data == Bag(["Mary", "Sam"])

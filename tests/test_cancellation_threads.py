"""Thread hygiene under cooperative cancellation (the PR 2 zombie-thread fix).

Each scenario takes a thread snapshot before the query, drives the engine
into a state that used to leave workers serving out multi-second simulated
latencies (LIMIT-satisfied close, deadline write-off, mediator-side abort),
then asserts every worker thread created for the query exits promptly after
``Mediator.close()`` -- far sooner than the latency it would have slept.
"""

import threading
import time

import pytest

from repro.errors import TypeConflictError
from repro.sources.network import NetworkProfile
from tests.conftest import build_paper_mediator

#: simulated source latency; a zombie worker would linger this long.
SLOW = 5.0
#: generous bound for a *cooperatively woken* worker to exit.
PROMPT = 2.5


def snapshot() -> set:
    return set(threading.enumerate())


def wait_for_worker_exit(before: set, timeout: float = PROMPT) -> bool:
    """True when every disco-exec thread created since ``before`` has exited."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        new_workers = [
            thread
            for thread in threading.enumerate()
            if thread not in before
            and thread.name.startswith("disco-exec")
            and thread.is_alive()
        ]
        if not new_workers:
            return True
        time.sleep(0.02)
    return False


def test_limit_satisfied_close_leaves_no_live_workers():
    before = snapshot()
    mediator, servers = build_paper_mediator()
    servers[0].network = NetworkProfile(base_latency=SLOW)
    servers[0].real_sleep = True
    started = time.monotonic()
    result = mediator.query_stream("select x.name from x in person limit 1", timeout=30.0)
    assert list(result.iter_rows()) == ["Sam"]  # satisfied by the fast source
    result.close()
    mediator.close()
    # The slow call's worker must wake from its 5s latency sleep, not serve it.
    assert wait_for_worker_exit(before)
    assert time.monotonic() - started < SLOW


def test_deadline_write_off_leaves_no_live_workers():
    before = snapshot()
    mediator, servers = build_paper_mediator()
    servers[0].network = NetworkProfile(base_latency=SLOW)
    servers[0].real_sleep = True
    result = mediator.query("select x.name from x in person", timeout=0.15)
    assert result.is_partial
    assert "timed out" in result.errors()["person0"]
    mediator.close()
    assert wait_for_worker_exit(before)


def test_mediator_side_abort_leaves_no_live_workers():
    """A failed type check aborts the query; in-flight calls are written off."""
    before = snapshot()
    mediator, servers = build_paper_mediator()
    servers[1].network = NetworkProfile(base_latency=SLOW)
    servers[1].real_sleep = True
    # Make person0's source type conflict with the mediator interface: the
    # abort happens while person1's slow call is still in flight.
    servers[0].store.drop_table("person0")
    servers[0].store.create_table("person0", rows=[{"id": 1, "misnamed": "x"}])
    with pytest.raises(TypeConflictError):
        mediator.query("select x.name from x in person", timeout=30.0)
    mediator.close()
    assert wait_for_worker_exit(before)


def test_streaming_abort_leaves_no_live_workers():
    """A mediator-side pipeline crash writes off the surviving calls."""
    from repro.errors import QueryExecutionError

    before = snapshot()
    mediator, servers = build_paper_mediator()
    servers[0].network = NetworkProfile(base_latency=SLOW)
    servers[0].real_sleep = True
    result = mediator.query_stream(
        "select x.salary / (x.salary - x.salary) from x in person", timeout=30.0
    )
    with pytest.raises(QueryExecutionError):
        list(result.iter_rows())
    mediator.close()
    assert wait_for_worker_exit(before)

"""Tests for every wrapper: capability grammars, execution, translation."""

import pytest

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.expressions import BooleanExpr, Comparison, Const, Path, Var
from repro.algebra.logical import Get, Join, Project, Select, Union
from repro.baselines.no_pushdown import GetOnlyWrapper
from repro.errors import CapabilityError, UnavailableSourceError, WrapperError
from repro.sources.csv_store import CsvStore
from repro.sources.keyvalue_store import KeyValueStore
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.sources.sql.engine import SqlEngine
from repro.sources.text_store import Document, TextStore
from repro.wrappers import (
    CsvWrapper,
    KeyValueWrapper,
    RelationalWrapper,
    SqlWrapper,
    TextSearchWrapper,
)

PERSON_ROWS = [
    {"id": 1, "name": "Mary", "salary": 200},
    {"id": 2, "name": "Sam", "salary": 50},
    {"id": 3, "name": "Ana", "salary": 5},
]


def salary_filter(threshold=10):
    return Comparison(">", Path(Var("x"), "salary"), Const(threshold))


def relational_server() -> SimulatedServer:
    engine = RelationalEngine("db")
    engine.create_table("person0", rows=PERSON_ROWS)
    engine.create_table("manager0", rows=[{"id": 1, "dept": "db"}, {"id": 2, "dept": "os"}])
    return SimulatedServer("host", engine)


class TestRelationalWrapper:
    def test_get_returns_all_rows(self):
        wrapper = RelationalWrapper("w0", relational_server())
        assert len(wrapper.submit(Get("person0"))) == 3

    def test_pushed_select_and_project(self):
        wrapper = RelationalWrapper("w0", relational_server())
        rows = wrapper.submit(Project(("name",), Select("x", salary_filter(), Get("person0"))))
        assert sorted(row["name"] for row in rows) == ["Mary", "Sam"]
        assert all(set(row) == {"name"} for row in rows)

    def test_pushed_join(self):
        wrapper = RelationalWrapper("w0", relational_server())
        rows = wrapper.submit(Join(Get("person0"), Get("manager0"), "id"))
        assert {row["dept"] for row in rows} == {"db", "os"}

    def test_pushed_union(self):
        wrapper = RelationalWrapper("w0", relational_server())
        rows = wrapper.submit(Union((Get("person0"), Get("person0"))))
        assert len(rows) == 6

    def test_capability_restriction_is_enforced(self):
        wrapper = RelationalWrapper(
            "w0", relational_server(), capabilities=CapabilitySet.of("get", "project")
        )
        with pytest.raises(CapabilityError):
            wrapper.submit(Select("x", salary_filter(), Get("person0")))

    def test_unavailable_server_propagates(self):
        server = relational_server()
        server.take_down()
        wrapper = RelationalWrapper("w0", server)
        with pytest.raises(UnavailableSourceError):
            wrapper.submit(Get("person0"))

    def test_metadata_helpers(self):
        wrapper = RelationalWrapper("w0", relational_server())
        assert set(wrapper.source_collections()) == {"person0", "manager0"}
        assert wrapper.source_attributes("person0") == ["id", "name", "salary"]
        assert wrapper.cardinality("person0") == 3
        assert wrapper.cardinality("missing") is None
        assert wrapper.describe()["operators"] == sorted(CapabilitySet.full().operators)

    def test_one_submit_is_one_server_round_trip(self):
        server = relational_server()
        wrapper = RelationalWrapper("w0", server)
        wrapper.submit(Project(("name",), Select("x", salary_filter(), Get("person0"))))
        assert server.statistics.requests == 1


class TestSqlWrapper:
    def sql_server(self) -> SimulatedServer:
        engine = SqlEngine(name="pg")
        engine.create_table("person0", rows=PERSON_ROWS)
        engine.create_table("dept0", rows=[{"id": 1, "dept": "db"}])
        return SimulatedServer("pg-host", engine)

    def test_translates_get_to_select_star(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        assert wrapper.to_sql(Get("person0")) == "SELECT * FROM person0"

    def test_translates_project_select(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        sql = wrapper.to_sql(Project(("name",), Select("x", salary_filter(), Get("person0"))))
        assert sql == "SELECT name FROM person0 WHERE salary > 10"

    def test_translates_boolean_predicates(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        predicate = BooleanExpr(
            "and",
            (salary_filter(), Comparison("!=", Path(Var("x"), "name"), Const("Sam"))),
        )
        sql = wrapper.to_sql(Select("x", predicate, Get("person0")))
        assert "WHERE (salary > 10 AND name <> 'Sam')" in sql

    def test_translates_join(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        sql = wrapper.to_sql(Join(Get("person0"), Get("dept0"), "id"))
        assert sql == "SELECT * FROM person0 JOIN dept0 ON id = id"

    def test_executes_through_sql_engine(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        rows = wrapper.submit(Project(("name",), Select("x", salary_filter(), Get("person0"))))
        assert sorted(row["name"] for row in rows) == ["Mary", "Sam"]

    def test_untranslatable_predicate_raises_wrapper_error(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        predicate = Comparison(">", Path(Var("x"), "salary"), Path(Var("x"), "id"))
        sql_expr = Select("x", predicate, Get("person0"))
        # column-to-column comparison translates fine; a computed operand does not
        from repro.algebra.expressions import Arithmetic

        bad = Select("x", Comparison(">", Arithmetic("+", Path(Var("x"), "salary"), Const(1)), Const(10)), Get("person0"))
        assert wrapper.to_sql(sql_expr)
        with pytest.raises(WrapperError):
            wrapper.to_sql(bad)

    def test_string_literals_are_escaped(self):
        wrapper = SqlWrapper("pg", self.sql_server())
        sql = wrapper.to_sql(
            Select("x", Comparison("=", Path(Var("x"), "name"), Const("O'Brien")), Get("person0"))
        )
        assert "'O''Brien'" in sql


class TestKeyValueWrapper:
    def kv_server(self) -> SimulatedServer:
        store = KeyValueStore("kv")
        store.create_collection("person0")
        store.put_many("person0", [(row["id"], row) for row in PERSON_ROWS])
        return SimulatedServer("kv-host", store)

    def test_get_scans_collection(self):
        wrapper = KeyValueWrapper("kv", self.kv_server())
        assert len(wrapper.submit(Get("person0"))) == 3

    def test_everything_else_is_rejected_by_grammar(self):
        wrapper = KeyValueWrapper("kv", self.kv_server())
        with pytest.raises(CapabilityError):
            wrapper.submit(Project(("name",), Get("person0")))

    def test_metadata(self):
        wrapper = KeyValueWrapper("kv", self.kv_server())
        assert wrapper.source_collections() == ["person0"]
        assert set(wrapper.source_attributes("person0")) == {"id", "name", "salary"}
        assert wrapper.cardinality("person0") == 3


class TestTextSearchWrapper:
    def text_server(self) -> SimulatedServer:
        store = TextStore("wais")
        store.create_collection("reports")
        store.add_documents(
            "reports",
            [
                Document("d1", "ph measurements", {"site": "Seine", "value": 7.1}),
                Document("d2", "nitrates", {"site": "Loire", "value": 3.0}),
            ],
        )
        return SimulatedServer("wais-host", store)

    def test_get_scans_documents(self):
        wrapper = TextSearchWrapper("wais", self.text_server())
        assert len(wrapper.submit(Get("reports"))) == 2

    def test_equality_select_is_mapped_to_keyword_search(self):
        wrapper = TextSearchWrapper("wais", self.text_server())
        rows = wrapper.submit(
            Select("x", Comparison("=", Path(Var("x"), "site"), Const("Seine")), Get("reports"))
        )
        assert [row["doc_id"] for row in rows] == ["d1"]

    def test_non_keyword_predicate_falls_back_to_scan_and_filter(self):
        wrapper = TextSearchWrapper("wais", self.text_server())
        rows = wrapper.submit(
            Select("x", Comparison(">", Path(Var("x"), "value"), Const(5)), Get("reports"))
        )
        assert [row["doc_id"] for row in rows] == ["d1"]

    def test_composition_is_rejected_by_grammar(self):
        wrapper = TextSearchWrapper("wais", self.text_server())
        nested = Select(
            "x",
            Comparison("=", Path(Var("x"), "site"), Const("Seine")),
            Select("x", Comparison("=", Path(Var("x"), "site"), Const("Seine")), Get("reports")),
        )
        with pytest.raises(CapabilityError):
            wrapper.submit(nested)


class TestCsvWrapper:
    def csv_server(self, tmp_path) -> SimulatedServer:
        store = CsvStore(tmp_path)
        store.write_collection("person0", PERSON_ROWS)
        return SimulatedServer("csv-host", store)

    def test_get_and_project(self, tmp_path):
        wrapper = CsvWrapper("csv", self.csv_server(tmp_path))
        assert len(wrapper.submit(Get("person0"))) == 3
        rows = wrapper.submit(Project(("name",), Get("person0")))
        assert all(set(row) == {"name"} for row in rows)

    def test_select_is_rejected(self, tmp_path):
        wrapper = CsvWrapper("csv", self.csv_server(tmp_path))
        with pytest.raises(CapabilityError):
            wrapper.submit(Select("x", salary_filter(), Get("person0")))

    def test_metadata(self, tmp_path):
        wrapper = CsvWrapper("csv", self.csv_server(tmp_path))
        assert wrapper.source_collections() == ["person0"]
        assert wrapper.cardinality("person0") == 3


class TestGetOnlyWrapper:
    def test_wraps_and_restricts_an_inner_wrapper(self):
        inner = RelationalWrapper("w0", relational_server())
        wrapper = GetOnlyWrapper(inner)
        assert len(wrapper.submit(Get("person0"))) == 3
        with pytest.raises(CapabilityError):
            wrapper.submit(Project(("name",), Get("person0")))
        assert wrapper.source_collections() == inner.source_collections()
        assert wrapper.cardinality("person0") == 3

"""Batched bind-join probes: the ``in``-list terminal end to end.

Pins the E14 behaviours on both engines: batch-boundary flushes, key
deduplication against the per-query probe cache, the degrade ladder
(``in`` -> per-key ``=`` -> full ship), the adaptive replan flip, failure
semantics (partial answers whose probe side stays a submit), and the
telemetry surfaced through ``ExecReport`` and ``Mediator.statistics()``.
"""

from __future__ import annotations

import pytest

from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet
from repro.oql.parser import parse_query
from repro.sources import RelationalEngine, SimulatedServer

QUERY = (
    "select struct(name: x.name, value: y.value) "
    "from x in left0, y in right0 where x.id = y.id"
)

#: everything except the set-membership terminal: probes degrade to per-key.
NO_IN_CAPS = CapabilitySet.of(
    "get", "project", "select", "join", "union", "flatten", "limit", "rename"
)
#: a source that cannot evaluate selections at all: probes degrade to a ship.
GET_ONLY_CAPS = CapabilitySet.of("get")


def build_probe_mediator(
    left_ids,
    right_rows: int = 50,
    batch_size: int = 4,
    replan_blowup_factor: float | None = None,
    right_capabilities: CapabilitySet | None = None,
):
    """An outer extent with the given join keys probing a ``right_rows`` inner."""
    left_engine = RelationalEngine(name="ldb")
    left_engine.create_table(
        "left0", rows=[{"id": key, "name": f"p{i}"} for i, key in enumerate(left_ids)]
    )
    right_engine = RelationalEngine(name="rdb")
    right_engine.create_table(
        "right0", rows=[{"id": i, "value": i * 3} for i in range(right_rows)]
    )
    left_server = SimulatedServer(name="lhost", store=left_engine)
    right_server = SimulatedServer(name="rhost", store=right_engine)
    mediator = Mediator(
        name="batch",
        bind_batch_size=batch_size,
        replan_blowup_factor=replan_blowup_factor,
    )
    mediator.register_wrapper("wl", RelationalWrapper("wl", left_server))
    mediator.register_wrapper(
        "wr", RelationalWrapper("wr", right_server, capabilities=right_capabilities)
    )
    mediator.create_repository("rl", host=left_server.name)
    mediator.create_repository("rr", host=right_server.name)
    mediator.define_interface(
        "Outer", [("id", "Long"), ("name", "String")], extent_name="left"
    )
    mediator.define_interface(
        "Inner", [("id", "Long"), ("value", "Long")], extent_name="right"
    )
    mediator.add_extent("left0", "Outer", "wl", "rl")
    mediator.add_extent("right0", "Inner", "wr", "rr")
    return mediator, left_server, right_server


def run_barrier(mediator, query=QUERY):
    result = mediator.query(query)
    return result.rows(), result


def run_streaming(mediator, query=QUERY):
    result = mediator.query_stream(query)
    rows = list(result.iter_rows())
    return rows, result


ENGINES = [pytest.param(run_barrier, id="barrier"), pytest.param(run_streaming, id="streaming")]


def probe_report(result):
    [report] = [r for r in result.reports if r.extent_name == "right0"]
    return report


def values_of(rows):
    return sorted(dict(row)["value"] for row in rows)


# -- batching -------------------------------------------------------------------------------------
@pytest.mark.parametrize("run", ENGINES)
def test_probe_calls_flush_at_batch_boundaries(run):
    """10 distinct keys at batch 4 -> ceil(10/4) = 3 set-valued submits."""
    mediator, _left, right = build_probe_mediator(range(10), batch_size=4)
    try:
        rows, result = run(mediator)
        assert values_of(rows) == [i * 3 for i in range(10)]
        assert right.statistics.requests == 3
        report = probe_report(result)
        assert report.attempts == 3
        assert report.available and not report.replanned
        assert report.degraded_to is None
    finally:
        mediator.close()


@pytest.mark.parametrize("run", ENGINES)
def test_repeated_keys_probe_once(run):
    """Dedup within a batch, per-query cache across batches."""
    mediator, _left, right = build_probe_mediator(
        [0, 1, 2, 0, 1, 2], batch_size=3
    )
    try:
        rows, _result = run(mediator)
        # Every binding still fans out: 6 left rows, each matching one right row.
        assert values_of(rows) == [0, 0, 3, 3, 6, 6]
        # Batch 1 probes {0,1,2}; batch 2 finds all three in the cache.
        assert right.statistics.requests == 1
        statistics = mediator.statistics()
        assert statistics["probe_cache_hits"] == 3
        assert statistics["probe_cache_misses"] == 3
    finally:
        mediator.close()


@pytest.mark.parametrize("run", ENGINES)
def test_none_keys_are_never_probed(run):
    """``=`` is None-rejecting, so None keys skip the source entirely."""
    mediator, _left, right = build_probe_mediator(
        [None, 1, None, 2], batch_size=10
    )
    try:
        rows, _result = run(mediator)
        assert values_of(rows) == [3, 6]
        assert right.statistics.requests == 1  # one batch: keys {1, 2}
    finally:
        mediator.close()


# -- the degrade ladder ---------------------------------------------------------------------------
@pytest.mark.parametrize("run", ENGINES)
def test_wrapper_without_in_degrades_to_per_key_probes(run):
    """No ``in`` terminal: one ``=`` submit per distinct key, flagged degraded."""
    mediator, _left, right = build_probe_mediator(
        range(6), batch_size=4, right_capabilities=NO_IN_CAPS
    )
    try:
        rows, result = run(mediator)
        assert values_of(rows) == [i * 3 for i in range(6)]
        assert right.statistics.requests == 6
        report = probe_report(result)
        assert report.attempts == 6
        assert report.degraded_to is not None
    finally:
        mediator.close()


@pytest.mark.parametrize("run", ENGINES)
def test_wrapper_without_select_ships_the_extent_once(run):
    """A get-only source cannot be probed at all: one full ship, joined here."""
    mediator, _left, right = build_probe_mediator(
        range(6), batch_size=4, right_capabilities=GET_ONLY_CAPS
    )
    try:
        rows, result = run(mediator)
        assert values_of(rows) == [i * 3 for i in range(6)]
        assert right.statistics.requests == 1
        report = probe_report(result)
        assert report.attempts == 1
        assert report.degraded_to is not None
    finally:
        mediator.close()


# -- adaptive re-planning -------------------------------------------------------------------------
@pytest.mark.parametrize("run", ENGINES)
def test_blowup_past_the_estimate_flips_to_ship(run):
    """With no history the estimate is ~1 row: the first batch blows through a
    factor of 1.0 and the runner re-plans into one full ship mid-query."""
    mediator, _left, right = build_probe_mediator(
        range(20), batch_size=4, replan_blowup_factor=1.0
    )
    try:
        rows, result = run(mediator)
        assert values_of(rows) == [i * 3 for i in range(20)]
        # Call 1: the first in-list batch (4 rows > 1.0 x 1 row estimate).
        # Call 2: the re-planned ship.  Remaining batches join locally.
        assert right.statistics.requests == 2
        report = probe_report(result)
        assert report.replanned
        assert report.attempts == 2
    finally:
        mediator.close()


@pytest.mark.parametrize("run", ENGINES)
def test_no_replan_when_factor_disabled(run):
    """``replan_blowup_factor=None`` never flips, whatever the blow-up."""
    mediator, _left, right = build_probe_mediator(
        range(20), batch_size=4, replan_blowup_factor=None
    )
    try:
        _rows, result = run(mediator)
        assert right.statistics.requests == 5  # ceil(20/4), no ship
        assert not probe_report(result).replanned
    finally:
        mediator.close()


# -- failure semantics ----------------------------------------------------------------------------
def test_probed_source_down_degrades_to_a_partial_answer():
    """Barrier: the probe side stays the submit it implements -- the partial
    answer is a query that, resubmitted after recovery, yields the full one."""
    mediator, _left, right = build_probe_mediator(range(6), batch_size=4)
    try:
        reference = values_of(mediator.query(QUERY).rows())
        right.take_down()
        partial = mediator.query(QUERY)
        assert partial.is_partial and partial.rows() == []
        assert partial.unavailable_sources == ("right0",)
        parse_query(partial.partial_query)  # the answer *is* a query
        right.bring_up()
        resubmitted = mediator.resubmit(partial)
        assert values_of(resubmitted.rows()) == reference
    finally:
        mediator.close()


def test_streaming_probe_failure_reports_without_raising():
    """Streaming: the probed source contributes no rows; the failure surfaces
    on the aggregated report, not as an exception into the consumer."""
    mediator, _left, right = build_probe_mediator(range(6), batch_size=4)
    try:
        right.take_down()
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == []
        assert result.is_partial
        assert "right0" in result.unavailable_sources
        report = probe_report(result)
        assert not report.available and report.error is not None
    finally:
        mediator.close()


def test_probe_calls_honor_the_global_deadline():
    """The query's one designated time period bounds probe calls too: a slow
    probed source times the query out into a partial answer (at most one
    wrapper round trip past the deadline), on both engines."""
    from repro.sources import NetworkProfile

    mediator, _left, right = build_probe_mediator(range(12), batch_size=4)
    try:
        right.network = NetworkProfile(base_latency=0.3)
        right.real_sleep = True
        result = mediator.query(QUERY, timeout=0.05)
        assert result.is_partial
        assert "right0" in result.unavailable_sources
        assert "timed out" in probe_report(result).error
        stream = mediator.query_stream(QUERY, timeout=0.05)
        rows = list(stream.iter_rows())
        assert stream.is_partial
        assert len(rows) <= 4  # at most the one batch in flight at expiry
    finally:
        mediator.close()


# -- telemetry ------------------------------------------------------------------------------------
def test_probe_calls_are_recorded_in_history():
    """Satellite: probes are first-class history observations under the probed
    extent, so the cost model's estimate of the probe expression improves."""
    mediator, _left, _right = build_probe_mediator(range(8), batch_size=4)
    try:
        before = mediator.history.recorded_calls()
        mediator.query(QUERY).rows()
        assert mediator.history.recorded_calls() > before
        # The in-list close signature collapses batch sizes: both batches
        # landed on one signature whose estimate now reflects real fan-in.
        availability = mediator.history.availability("right0")
        assert availability == pytest.approx(1.0)
    finally:
        mediator.close()


def test_in_predicate_pushes_to_the_source():
    """A user-written ``in`` list rides the same terminal: the source filters."""
    mediator, _left, right = build_probe_mediator([0], right_rows=50)
    try:
        rows = mediator.query(
            "select y.value from y in right0 where y.id in (1, 3, 5)"
        ).rows()
        assert sorted(rows) == [3, 9, 15]
        assert right.statistics.rows_returned == 3  # filtered source-side
    finally:
        mediator.close()


def test_in_predicate_round_trips_through_a_partial_answer():
    """Set literals survive the unparse/reparse cycle partial answers rely on."""
    mediator, _left, right = build_probe_mediator([0], right_rows=50)
    try:
        query = "select y.value from y in right0 where y.id in (1, 3, 5)"
        right.take_down()
        partial = mediator.query(query)
        assert partial.is_partial
        assert " in (" in partial.partial_query
        parse_query(partial.partial_query)
        right.bring_up()
        resubmitted = mediator.resubmit(partial)
        assert sorted(resubmitted.rows()) == [3, 9, 15]
    finally:
        mediator.close()


# -- the empty-batch edge --------------------------------------------------------------------------
@pytest.mark.parametrize("run", ENGINES)
def test_all_none_keys_issue_no_probe_calls(run):
    """A batch whose keys are all None deduplicates to nothing: the source
    must never see it (an empty ``in ()`` renders as invalid SQL there)."""
    mediator, _left, right = build_probe_mediator([None, None, None], batch_size=2)
    try:
        rows, result = run(mediator)
        assert rows == []
        assert right.statistics.requests == 0
        assert not result.is_partial
    finally:
        mediator.close()


def test_sql_wrapper_refuses_an_empty_in_list():
    """Defense in depth below the probe runner's guard: an empty ``in`` list
    has no SQL spelling (``IN ()`` is a syntax error), so the wrapper raises
    instead of shipping an unparsable statement."""
    from repro.algebra.expressions import InList, Path, Var
    from repro.algebra.logical import Get, Select
    from repro.errors import WrapperError
    from repro.sources.sql.engine import SqlEngine
    from repro.wrappers import SqlWrapper

    engine = SqlEngine(name="pg")
    engine.create_table("right0", rows=[{"id": 1, "value": 3}])
    wrapper = SqlWrapper("pg", SimulatedServer("pg-host", engine))
    with pytest.raises(WrapperError):
        wrapper.to_sql(Select("y", InList(Path(Var("y"), "id"), ()), Get("right0")))

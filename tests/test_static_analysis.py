"""The repo itself passes `python -m repro.analysis`, and the suite catches
a synthetic operator that skips the dispatch ladders it must extend."""

import dataclasses
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    load_modules,
    render_lock_table,
    run_suite,
)
from repro.analysis.baseline import Baseline
from repro.analysis.dispatch import check_dispatch
from repro.analysis.drift import extract_lock_block
from repro.analysis.spec import repo_spec

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_repo_is_clean_under_the_suite():
    result = run_suite(REPO_ROOT)
    assert result.ok, "\n".join(
        [f.render() for f in result.new]
        + [f"stale baseline: {e.key}" for e in result.stale]
        + result.baseline_errors
    )


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.txt")
    assert baseline.errors == []
    assert baseline.entries, "repo baseline unexpectedly empty"
    for entry in baseline.entries.values():
        assert "TODO" not in entry.justification, entry.key


def test_cli_exits_zero_on_the_repo():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", str(REPO_ROOT)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new" in proc.stdout


def test_new_operator_without_dispatch_arms_is_flagged(tmp_path):
    """A logical/physical operator added without touching the unparser, cost
    model, implementation, and composer ladders must surface as missing-arm
    findings -- the machine-checked half of the "extend the ladders" rule."""
    shutil.copytree(REPO_ROOT / "src" / "repro", tmp_path / "src" / "repro")
    logical = tmp_path / "src" / "repro" / "algebra" / "logical.py"
    physical = tmp_path / "src" / "repro" / "algebra" / "physical.py"
    logical.write_text(
        logical.read_text()
        + "\n\n@dataclass(frozen=True)\nclass Shuffle(LogicalOp):\n    child: LogicalOp\n"
    )
    physical.write_text(
        physical.read_text()
        + "\n\n@dataclass(frozen=True)\nclass MkShuffle(PhysicalOp):\n    child: PhysicalOp\n"
    )
    spec = dataclasses.replace(repo_spec(), drift=None, baseline=None)
    result = run_suite(tmp_path, spec=spec, baseline_path=None)
    flagged = {
        (f.scope, f.message.split("`")[1])
        for f in result.findings
        if f.rule == "missing-arm"
    }
    shuffle_sites = {scope for scope, cls in flagged if cls == "Shuffle"}
    mkshuffle_sites = {scope for scope, cls in flagged if cls == "MkShuffle"}
    assert "unparser.unparse" in shuffle_sites, sorted(flagged)
    assert "implementation.implement" in shuffle_sites, sorted(flagged)
    assert "cost.estimate" in mkshuffle_sites, sorted(flagged)
    assert "executor.compose_rows" in mkshuffle_sites, sorted(flagged)


def test_dispatch_checker_covers_every_declared_hierarchy():
    spec = repo_spec()
    hierarchy_names = {h.name for h in spec.hierarchies}
    assert hierarchy_names == {"logical", "physical", "expr"}
    used = {site.hierarchy for site in spec.dispatch_sites}
    assert used == hierarchy_names


def test_architecture_lock_table_matches_the_spec():
    doc = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    extracted = extract_lock_block(doc)
    assert extracted is not None, "lock-spec markers missing from docs/ARCHITECTURE.md"
    block, _start_line = extracted
    assert block.strip() == render_lock_table(repo_spec().lock_components).strip()


def test_ci_has_a_blocking_static_analysis_job():
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "static-analysis:" in workflow
    assert "python -m repro.analysis" in workflow


def test_spec_modules_all_exist():
    """Every module named in the repo spec resolves to a scanned file, so a
    file rename cannot silently disable a checker."""
    spec = repo_spec()
    modules = {m.path for m in load_modules(REPO_ROOT, spec.scan)}
    for component in spec.lock_components:
        assert component.module in modules, component.module
    for hierarchy in spec.hierarchies:
        assert hierarchy.module in modules, hierarchy.module
    for site in spec.dispatch_sites:
        assert site.module in modules, site.module
    spec_errors = [
        f
        for f in check_dispatch(spec, load_modules(REPO_ROOT, spec.scan))
        if f.rule == "spec-error"
    ]
    assert spec_errors == [], [f.render() for f in spec_errors]

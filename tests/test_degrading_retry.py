"""Degrading pushdown retries (the capability-failure recovery ladder).

A wrapper whose declared grammar is wider than what it really evaluates --
the mis-declared wrapper -- rejects pushed expressions at run time.  The
adaptive retry policy must then re-submit a *strictly smaller* pushdown on
every attempt (ultimately a bare ``get``), replay the stripped operators at
the mediator, and leave transient-failure retry semantics untouched.  Both
engines are covered.
"""

import pytest

from repro import Mediator
from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import Get, Limit, Project, Select
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.errors import UnavailableSourceError, WrapperError
from repro.runtime.degrade import (
    compensate_rows,
    degradation_ladder,
    degrade_pushdown,
    is_capability_failure,
)
from repro.wrappers.base import Wrapper

ROWS = [{"id": i, "name": f"p{i}", "salary": i * 10} for i in range(10)]
QUERY = "select x.name from x in person0 where x.salary > 40 limit 2"
EXPECTED = ["p5", "p6"]


class LyingWrapper(Wrapper):
    """Declares select/project/limit but its translator only handles ``get``."""

    def __init__(self, name, rows, fail_transiently: int = 0):
        super().__init__(name, CapabilitySet.of("get", "project", "select", "limit"))
        self.rows = rows
        self.submitted: list[str] = []
        self._transient_failures = fail_transiently

    def _execute(self, expression):
        self.submitted.append(expression.to_text())
        if self._transient_failures > 0:
            self._transient_failures -= 1
            raise UnavailableSourceError(self.name, "transient outage")
        if not isinstance(expression, Get):
            raise WrapperError(f"translator cannot handle {expression.to_text()}")
        return [dict(row) for row in self.rows]

    def source_attributes(self, collection):
        return ["id", "name", "salary"]


def build_mediator(wrapper, **mediator_kwargs):
    mediator = Mediator(name="degrade", **mediator_kwargs)
    mediator.register_wrapper("w0", wrapper)
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator


def _node_count(text: str) -> int:
    return text.count("(")


class TestLadder:
    def test_ladder_strips_outermost_operator_down_to_bare_get(self):
        predicate = Comparison(">", Path(Var("x"), "salary"), Const(40))
        expr = Limit(2, Project(("name",), Select("x", predicate, Get("person0"))))
        ladder = [step.to_text() for step in degradation_ladder(expr)]
        assert ladder == [
            "project(name, select(x: x.salary > 40, get(person0)))",
            "select(x: x.salary > 40, get(person0))",
            "get(person0)",
        ]
        assert degrade_pushdown(Get("person0")) is None

    def test_multi_leaf_expressions_are_not_degradable(self):
        from repro.algebra.logical import Join, Union

        join = Join(Get("a"), Get("b"), "id")
        assert degrade_pushdown(join) is None
        assert degrade_pushdown(Union((Get("a"), Get("b")))) is None

    def test_classification(self):
        from repro.errors import CapabilityError

        assert is_capability_failure(WrapperError("nope"))
        assert is_capability_failure(CapabilityError("nope"))
        assert not is_capability_failure(UnavailableSourceError("s0"))
        assert not is_capability_failure(RuntimeError("connection reset"))

    def test_compensation_replays_stripped_operators(self):
        predicate = Comparison(">", Path(Var("x"), "salary"), Const(40))
        expr = Limit(2, Select("x", predicate, Get("person0")))
        stripped = []
        step = degrade_pushdown(expr)
        while step is not None:
            expr, removed = step
            stripped.append(removed)
            step = degrade_pushdown(expr)
        compensated = list(compensate_rows(stripped, [dict(r) for r in ROWS]))
        assert [row["name"] for row in compensated] == EXPECTED


@pytest.mark.parametrize("engine", ["query", "query_stream"])
class TestDegradingRetryEndToEnd:
    def run(self, mediator, engine):
        result = getattr(mediator, engine)(QUERY)
        rows = list(result.iter_rows()) if engine == "query_stream" else result.rows()
        return result, rows

    def test_each_retry_submits_a_strictly_smaller_pushdown(self, engine):
        wrapper = LyingWrapper("w0", ROWS)
        mediator = build_mediator(wrapper, max_retries=3)
        result, rows = self.run(mediator, engine)
        assert rows == EXPECTED
        assert not result.is_partial
        # Every re-submission is strictly smaller, ending at a bare get.
        sizes = [_node_count(text) for text in wrapper.submitted]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(wrapper.submitted)) == len(wrapper.submitted)
        assert wrapper.submitted[-1] == "get(person0)"
        report = result.reports[0]
        assert report.attempts == len(wrapper.submitted)
        assert report.degraded_to == "get(person0)"
        mediator.close()

    def test_insufficient_retry_budget_degrades_to_partial_answer(self, engine):
        wrapper = LyingWrapper("w0", ROWS)
        mediator = build_mediator(wrapper, max_retries=1)
        result, rows = self.run(mediator, engine)
        # Two rungs were needed (project, then select, then get); with one
        # retry the call still fails and the source degrades to unavailable.
        assert rows == []
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)
        mediator.close()

    def test_transient_failures_retry_the_same_expression(self, engine):
        wrapper = LyingWrapper("w0", ROWS, fail_transiently=2)
        # Capabilities narrowed to get so the pushed expression is minimal
        # and the failures are genuinely transient.
        wrapper.capabilities = CapabilitySet.get_only()
        wrapper._grammar = wrapper.capabilities.to_grammar()
        mediator = build_mediator(wrapper, max_retries=2)
        mediator.executor.config.retry_backoff = 0.001
        result, rows = self.run(mediator, engine)
        assert rows == EXPECTED  # mediator-side select/limit still apply
        assert wrapper.submitted == ["get(person0)"] * 3
        assert result.reports[0].attempts == 3
        assert result.reports[0].degraded_to is None
        mediator.close()

    def test_capability_failure_with_no_rung_left_fails_fast(self, engine):
        class GetRejectingWrapper(LyingWrapper):
            def _execute(self, expression):
                self.submitted.append(expression.to_text())
                raise WrapperError("even get is broken")

        wrapper = GetRejectingWrapper("w0", ROWS)
        mediator = build_mediator(wrapper, max_retries=5)
        result, rows = self.run(mediator, engine)
        assert result.is_partial
        # The ladder has 3 rungs below the original; once the bare get is
        # rejected there is nothing smaller to try, so no further attempts.
        assert wrapper.submitted[-1] == "get(person0)"
        assert len(wrapper.submitted) == 4
        mediator.close()

    def test_degraded_rows_are_renamed_before_compensation(self, engine):
        """With a non-identity map, compensation must see mediator vocabulary
        (regression: the streaming path once emptied the rename map before
        the lazy renamer ran, filtering every row out silently)."""
        from repro.datamodel.mapping import LocalTransformationMap

        source_rows = [{"pid": i, "nm": f"p{i}", "sal": i * 10} for i in range(10)]
        wrapper = LyingWrapper("w0", source_rows)
        wrapper.source_attributes = lambda collection: ["pid", "nm", "sal"]
        mediator = Mediator(name="renamed", max_retries=3)
        mediator.register_wrapper("w0", wrapper)
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent(
            "person0",
            "Person",
            "w0",
            "r0",
            map=LocalTransformationMap.from_pairs(
                [("t0", "person0"), ("pid", "id"), ("nm", "name"), ("sal", "salary")]
            ),
        )
        result, rows = self.run(mediator, engine)
        assert rows == EXPECTED
        assert not result.is_partial
        # The degraded bare get was translated to the source's collection name.
        assert wrapper.submitted[-1] == "get(t0)"
        mediator.close()

    def test_degradation_can_be_disabled(self, engine):
        wrapper = LyingWrapper("w0", ROWS)
        mediator = build_mediator(wrapper, max_retries=2)
        mediator.executor.config.degrade_pushdown = False
        mediator.executor.config.retry_backoff = 0.001
        result, rows = self.run(mediator, engine)
        # Legacy policy: the same rejected expression is repeated verbatim.
        assert result.is_partial
        assert len(set(wrapper.submitted)) == 1
        assert len(wrapper.submitted) == 3
        mediator.close()

"""Tests for the synthetic workload generators."""

from repro.sources.workload import (
    WorkloadConfig,
    build_person_sources,
    build_water_quality_sources,
    generate_person_rows,
    generate_student_rows,
    generate_water_quality_rows,
)


class TestGenerators:
    def test_person_rows_are_deterministic(self):
        assert generate_person_rows(10, seed=3) == generate_person_rows(10, seed=3)
        assert generate_person_rows(10, seed=3) != generate_person_rows(10, seed=4)

    def test_person_rows_have_unique_ids_with_offset(self):
        first = generate_person_rows(5, seed=1, id_offset=0)
        second = generate_person_rows(5, seed=1, id_offset=5)
        ids = [row["id"] for row in first + second]
        assert len(set(ids)) == 10

    def test_student_rows_extend_person_rows(self):
        rows = generate_student_rows(3, seed=2)
        assert all({"id", "name", "salary", "university"} <= set(row) for row in rows)

    def test_water_quality_rows_share_one_type(self):
        rows = generate_water_quality_rows(20, site="Seine", seed=5)
        assert all(set(row) == {"site", "day", "parameter", "value"} for row in rows)
        assert all(row["site"] == "Seine" for row in rows)


class TestSourceBuilders:
    def test_build_person_sources_creates_one_table_per_server(self):
        servers = build_person_sources(WorkloadConfig(sources=3, rows_per_source=10))
        assert len(servers) == 3
        for index, server in enumerate(servers):
            assert server.store.table_names() == [f"person{index}"]
            assert server.store.cardinality(f"person{index}") == 10

    def test_build_water_quality_sources_have_identical_schema(self):
        servers = build_water_quality_sources(WorkloadConfig(sources=4, rows_per_source=5))
        columns = {
            tuple(sorted(server.store.table(server.store.table_names()[0]).column_names()))
            for server in servers
        }
        assert len(columns) == 1

    def test_failure_probability_is_wired_through(self):
        servers = build_person_sources(
            WorkloadConfig(sources=2, rows_per_source=1, failure_probability=0.5)
        )
        assert all(server.availability.failure_probability == 0.5 for server in servers)

    def test_sites_are_distinct_across_sources(self):
        servers = build_water_quality_sources(WorkloadConfig(sources=6, rows_per_source=1))
        sites = set()
        for server in servers:
            table = server.store.table(server.store.table_names()[0])
            sites.add(next(iter(table.rows()))["site"])
        assert len(sites) == 6

"""Per-branch namespace planning: source-side aliasing for colliding pushdowns.

Covers the full surface of the multi-extent reverse-rename fix:

* the namespace planner injects ``rename`` aliases per branch and the reverse
  map is collision-free by construction;
* all three pushdown targets evaluate aliased expressions -- the relational
  wrapper (algebra evaluator), the SQL wrapper (``AS`` inside a derived
  table) and the generator wrapper (lazy cursors);
* both engines (barrier ``execute`` and streaming ``execute_stream``) agree,
  and the user-level ``query()`` / ``query_stream()`` APIs stay correct over
  colliding schemas;
* a wrapper that cannot express renames triggers the refuse-to-push fallback
  (per-leaf gets, recombined at the mediator) instead of mis-renaming rows;
* partial answers containing aliases unparse to OQL, re-parse, and resubmit
  to the right rows;
* the satellite fixes: reverse maps are built only from the ``get`` nodes
  actually present, type-check verdicts die with the schema version, and the
  two engines agree on retry-attempt accounting under write-off.
"""

import time

import pytest

from repro import Mediator, RelationalWrapper, TypeConflictError
from repro.algebra.capabilities import CapabilitySet, PUSHABLE_OPERATORS, grammar_for
from repro.algebra.logical import Get, Join, Rename, Select, Submit, Union
from repro.algebra.unparser import logical_to_oql
from repro.datamodel.mapping import LocalTransformationMap
from repro.oql.parser import parse_query
from repro.optimizer.implementation import implement
from repro.runtime.degrade import compensate_rows, degradation_ladder
from repro.sources import RelationalEngine, SimulatedServer, TableSchema
from repro.sources.sql.engine import SqlEngine
from repro.wrappers import GeneratorWrapper, SqlWrapper
from repro.wrappers.base import Wrapper

EMP_ROWS = [{"id": 1, "nm": "mary"}, {"id": 2, "nm": "sam"}]
DEPT_ROWS = [{"id": 1, "nm": "engineering"}, {"id": 2, "nm": "sales"}]

JOIN_PLAN = Submit("r0", Join(Get("emp0"), Get("dept0"), "id"), extent_name="emp0")

EXPECTED = [
    {"id": 1, "name": "mary", "label": "engineering"},
    {"id": 2, "name": "sam", "label": "sales"},
]


def define_colliding_schema(mediator):
    """Two interfaces whose extents map the same source column ``nm`` apart."""
    mediator.create_repository("r0")
    mediator.define_interface(
        "Emp", [("id", "Long"), ("name", "String")], extent_name="emps"
    )
    mediator.define_interface(
        "Dept", [("id", "Long"), ("label", "String")], extent_name="depts"
    )
    mediator.add_extent(
        "emp0",
        "Emp",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_emp", "emp0"), ("nm", "name")]),
    )
    mediator.add_extent(
        "dept0",
        "Dept",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_dept", "dept0"), ("nm", "label")]),
    )


def build_relational_collider(capabilities=None):
    engine = RelationalEngine(name="db0")
    engine.create_table(
        "t_emp", schema=TableSchema.of(("id", int), ("nm", str)), rows=EMP_ROWS
    )
    engine.create_table(
        "t_dept", schema=TableSchema.of(("id", int), ("nm", str)), rows=DEPT_ROWS
    )
    server = SimulatedServer(name="h0", store=engine)
    mediator = Mediator(name="collide")
    mediator.register_wrapper(
        "w0", RelationalWrapper("w0", server, capabilities=capabilities)
    )
    define_colliding_schema(mediator)
    return mediator, server


def build_sql_collider():
    engine = SqlEngine(name="pg")
    engine.create_table("t_emp", rows=EMP_ROWS)
    engine.create_table("t_dept", rows=DEPT_ROWS)
    server = SimulatedServer(name="pg-host", store=engine)
    mediator = Mediator(name="sql-collide")
    mediator.register_wrapper("w0", SqlWrapper("w0", server))
    define_colliding_schema(mediator)
    return mediator, server


def sorted_rows(values):
    return sorted((dict(row) for row in values), key=lambda row: row["id"])


def run_both_engines(mediator, plan):
    """The plan's rows from the barrier and the streaming engine, plus reports."""
    barrier = mediator.executor.execute(plan)
    assert not barrier.is_partial, barrier.errors()
    stream = mediator.executor.execute_stream(plan)
    streamed = stream.to_list()
    assert not stream.is_partial, stream.errors()
    return barrier, streamed, stream


# -- the namespace plan itself ---------------------------------------------------------


class TestNamespacePlan:
    def test_injects_per_branch_renames_and_collision_free_reverse_map(self):
        mediator, _ = build_relational_collider()
        try:
            executor = mediator.executor
            meta = mediator.registry.extent("emp0")
            wrapper = mediator.registry.wrapper_object("w0")
            plan = executor.namespace_plan(JOIN_PLAN.expression, meta, wrapper)
            assert plan.aliased and plan.split is None
            renames = [
                node for node in _walk(plan.expression) if isinstance(node, Rename)
            ]
            assert len(renames) == 2  # one alias layer per join branch
            outputs = [dict(node.pairs) for node in renames]
            # The colliding column got a unique name per branch; the join
            # attribute did not collide and kept its source name.
            assert {pairs["nm"] for pairs in outputs} == {"nm__emp0", "nm__dept0"}
            assert all(pairs["id"] == "id" for pairs in outputs)
            assert plan.reverse["nm__emp0"] == "name"
            assert plan.reverse["nm__dept0"] == "label"
            # Collision-free by construction: distinct keys, nothing clobbered.
            assert "nm" not in plan.reverse
        finally:
            mediator.close()

    def test_no_aliases_without_a_collision(self):
        mediator, _ = build_relational_collider()
        try:
            executor = mediator.executor
            meta = mediator.registry.extent("emp0")
            plan = executor.namespace_plan(Get("emp0"), meta)
            assert not plan.aliased and plan.split is None
            assert not any(isinstance(n, Rename) for n in _walk(plan.expression))
            assert plan.reverse == {"nm": "name"}
        finally:
            mediator.close()

    def test_reverse_map_built_only_from_gets_actually_present(self):
        """The submit's default extent must not clobber an unrelated call."""
        engine = RelationalEngine(name="db0")
        engine.create_table(
            "t_emp", schema=TableSchema.of(("id", int), ("nm", str)), rows=EMP_ROWS
        )
        engine.create_table(
            "t_raw",
            schema=TableSchema.of(("id", int), ("nm", str)),
            rows=[{"id": 7, "nm": "plain"}],
        )
        server = SimulatedServer(name="h0", store=engine)
        mediator = Mediator(name="stray-map")
        mediator.register_wrapper("w0", RelationalWrapper("w0", server))
        mediator.create_repository("r0")
        mediator.define_interface(
            "Emp", [("id", "Long"), ("name", "String")], extent_name="emps"
        )
        mediator.define_interface(
            "Raw", [("id", "Long"), ("nm", "String")], extent_name="raws"
        )
        mediator.add_extent(
            "emp0",
            "Emp",
            "w0",
            "r0",
            map=LocalTransformationMap.from_pairs([("t_emp", "emp0"), ("nm", "name")]),
        )
        mediator.add_extent(
            "raw0",
            "Raw",
            "w0",
            "r0",
            map=LocalTransformationMap.from_pairs([("t_raw", "raw0")]),
        )
        try:
            # The exec call's *default* extent is emp0 (whose map renames
            # nm -> name), but the expression only references raw0, whose
            # rows keep their nm attribute untouched.
            plan = implement(Submit("r0", Get("raw0"), extent_name="emp0"))
            (row,) = mediator.executor.execute(plan).data.to_list()
            assert row["nm"] == "plain"
            assert "name" not in dict(row)
        finally:
            mediator.close()


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


# -- pushdown targets, both engines ------------------------------------------------------


class TestCollidingPushdowns:
    def test_relational_wrapper_barrier_and_streaming(self):
        mediator, _ = build_relational_collider()
        try:
            barrier, streamed, stream = run_both_engines(mediator, implement(JOIN_PLAN))
            assert sorted_rows(barrier.data.to_list()) == EXPECTED
            assert sorted_rows(streamed) == EXPECTED
            for report in (*barrier.reports, *stream.reports):
                assert report.available and report.split_calls == 0
        finally:
            mediator.close()

    def test_sql_wrapper_renders_aliases_as_AS(self):
        mediator, server = build_sql_collider()
        try:
            executor = mediator.executor
            meta = mediator.registry.extent("emp0")
            wrapper = mediator.registry.wrapper_object("w0")
            plan = executor.namespace_plan(JOIN_PLAN.expression, meta, wrapper)
            sql = wrapper.to_sql(plan.expression)
            assert "AS nm__emp0" in sql and "AS nm__dept0" in sql
            assert sql.count("JOIN") == 1
            # ... and the whole round trip returns correctly renamed rows.
            barrier, streamed, _ = run_both_engines(mediator, implement(JOIN_PLAN))
            assert sorted_rows(barrier.data.to_list()) == EXPECTED
            assert sorted_rows(streamed) == EXPECTED
        finally:
            mediator.close()

    def test_generator_wrapper_cursor_union(self):
        """Aliasing also disambiguates a colliding union over lazy cursors."""
        mediator = Mediator(name="gen-collide")
        mediator.register_wrapper(
            "w0",
            GeneratorWrapper(
                "w0",
                {
                    "t_emp": lambda: iter(EMP_ROWS),
                    "t_dept": lambda: iter(DEPT_ROWS),
                },
                attributes={"t_emp": ["id", "nm"], "t_dept": ["id", "nm"]},
            ),
        )
        define_colliding_schema(mediator)
        try:
            plan = implement(
                Submit("r0", Union((Get("emp0"), Get("dept0"))), extent_name="emp0")
            )
            barrier, streamed, _ = run_both_engines(mediator, plan)
            for rows in (barrier.data.to_list(), streamed):
                names = sorted(
                    dict(row)["name"] for row in rows if "name" in dict(row)
                )
                labels = sorted(
                    dict(row)["label"] for row in rows if "label" in dict(row)
                )
                assert names == ["mary", "sam"]
                assert labels == ["engineering", "sales"]
        finally:
            mediator.close()

    def test_query_and_query_stream_over_colliding_schema(self):
        """The user-level APIs stay correct when the schema collides."""
        mediator, _ = build_relational_collider()
        try:
            text = (
                "select struct(n: x.name, l: y.label) "
                "from x in emp0 and y in dept0 where x.id = y.id"
            )
            expected = [
                {"n": "mary", "l": "engineering"},
                {"n": "sam", "l": "sales"},
            ]
            queried = sorted(
                (dict(r) for r in mediator.query(text).rows()), key=lambda r: r["n"]
            )
            streamed = sorted(
                (dict(r) for r in mediator.query_stream(text).rows()),
                key=lambda r: r["n"],
            )
            assert queried == sorted(expected, key=lambda r: r["n"])
            assert streamed == queried
        finally:
            mediator.close()


# -- refuse-to-push fallback ---------------------------------------------------------


class TestRefuseToPushFallback:
    def test_wrapper_without_rename_splits_into_per_leaf_calls(self):
        capabilities = CapabilitySet.of("get", "project", "select", "join")
        mediator, _ = build_relational_collider(capabilities=capabilities)
        try:
            plan = implement(JOIN_PLAN)
            barrier, streamed, stream = run_both_engines(mediator, plan)
            # Never mis-renamed rows: the join happened at the mediator over
            # two bare per-leaf gets.
            assert sorted_rows(barrier.data.to_list()) == EXPECTED
            assert sorted_rows(streamed) == EXPECTED
            (report,) = barrier.reports
            assert report.available and report.split_calls == 2
            (stream_report,) = stream.reports
            assert stream_report.available and stream_report.split_calls == 2
        finally:
            mediator.close()

    def test_split_with_predicate_replays_it_at_the_mediator(self):
        from repro.algebra.expressions import Comparison, Const, Path, Var

        capabilities = CapabilitySet.of("get", "project", "select", "join")
        mediator, _ = build_relational_collider(capabilities=capabilities)
        try:
            predicate = Comparison(">", Path(Var("x"), "id"), Const(1))
            plan = implement(
                Submit(
                    "r0",
                    Select("x", predicate, Join(Get("emp0"), Get("dept0"), "id")),
                    extent_name="emp0",
                )
            )
            barrier, streamed, _ = run_both_engines(mediator, plan)
            assert sorted_rows(barrier.data.to_list()) == [EXPECTED[1]]
            assert sorted_rows(streamed) == [EXPECTED[1]]
        finally:
            mediator.close()


# -- degradation coherence ----------------------------------------------------------------


class TestDegradeStripsAliases:
    def test_rename_is_on_the_degradation_ladder(self):
        pairs = (("name", "n"), ("id", "id"))
        ladder = degradation_ladder(Rename(pairs, Get("emp0")))
        assert [step.to_text() for step in ladder] == ["get(emp0)"]
        rows = list(
            compensate_rows([Rename(pairs, Get("emp0"))][:1], [{"name": "mary", "id": 1}])
        )
        assert [dict(row) for row in rows] == [{"n": "mary", "id": 1}]

    def test_capability_vocabulary_includes_rename(self):
        assert "rename" in PUSHABLE_OPERATORS
        assert CapabilitySet.full().supports("rename")
        grammar = grammar_for({"get", "rename"})
        assert grammar.accepts(Rename((("a", "b"),), Get("c")))
        assert "rename OPEN ALIASES COMMA" in grammar.render()
        assert not grammar_for({"get"}).accepts(Rename((("a", "b"),), Get("c")))


# -- unparser round trip -------------------------------------------------------------------


class TestAliasedPartialAnswers:
    def test_partial_answer_with_rename_round_trips(self):
        mediator, server = build_relational_collider()
        try:
            plan = implement(
                Submit(
                    "r0",
                    Rename((("name", "n"), ("id", "id")), Get("emp0")),
                    extent_name="emp0",
                )
            )
            server.take_down()
            partial = mediator.executor.execute(plan)
            assert partial.is_partial
            text = partial.partial_query
            assert "struct(n: " in text
            parse_query(text)  # the partial answer is itself a query
            server.bring_up()
            resubmitted = mediator.executor.execute(implement(partial.partial_plan))
            assert not resubmitted.is_partial
            assert sorted(
                (dict(row) for row in resubmitted.data.to_list()),
                key=lambda row: row["id"],
            ) == [{"n": "mary", "id": 1}, {"n": "sam", "id": 2}]
        finally:
            mediator.close()

    def test_mediator_side_rename_runs_in_both_engines(self):
        mediator, _ = build_relational_collider()
        try:
            plan = implement(
                Rename(
                    (("name", "n"), ("id", "id")),
                    Submit("r0", Get("emp0"), extent_name="emp0"),
                )
            )
            barrier, streamed, _ = run_both_engines(mediator, plan)
            expected = [{"n": "mary", "id": 1}, {"n": "sam", "id": 2}]
            for rows in (barrier.data.to_list(), streamed):
                assert sorted(
                    (dict(row) for row in rows), key=lambda row: row["id"]
                ) == expected
        finally:
            mediator.close()

    def test_rename_above_a_join_has_no_oql_rendering(self):
        from repro.errors import QueryExecutionError

        # The merged join element's attributes cannot be attributed to one
        # block variable without schema knowledge; unparsing must fail loudly
        # instead of reading every attribute off the first variable.
        plan = Submit(
            "r0",
            Rename((("name", "n"), ("label", "l")), Join(Get("emp0"), Get("dept0"), "id")),
            extent_name="emp0",
        )
        with pytest.raises(QueryExecutionError, match="multi-source"):
            logical_to_oql(plan)

    def test_join_with_renamed_operand_unparses_to_inline_block(self):
        expression = Join(
            Rename((("name", "n"), ("id", "id")), Get("emp0")),
            Get("dept0"),
            ("id", "id"),
        )
        text = logical_to_oql(Submit("r0", expression, extent_name="emp0"))
        # The renamed side became its own inline block so the aliases apply
        # before the join sees the element.
        assert "in (select struct(n: " in text
        parse_query(text)


# -- type-check verdicts die with the schema version -----------------------------------------


class TestTypeCheckInvalidation:
    def test_reregistration_through_the_registry_drops_stale_verdicts(self):
        mediator, _ = build_relational_collider()
        try:
            plan = implement(Submit("r0", Get("emp0"), extent_name="emp0"))
            assert not mediator.executor.execute(plan).is_partial  # verdict cached
            # Re-register the extent *through the registry* (the path that
            # does not call Executor.invalidate_type_checks) with a map whose
            # source column does not exist.
            mediator.registry.drop_extent("emp0")
            mediator.registry.add_extent(
                "emp0",
                "Emp",
                "w0",
                "r0",
                map=LocalTransformationMap.from_pairs(
                    [("t_emp", "emp0"), ("missing", "name")]
                ),
            )
            with pytest.raises(TypeConflictError):
                mediator.executor.execute(plan)
        finally:
            mediator.close()


# -- attempt accounting is aligned across engines ---------------------------------------------


class _AlwaysFailing(Wrapper):
    def __init__(self, name: str):
        super().__init__(name, CapabilitySet.full())
        self.calls = 0

    def _execute(self, expression):
        self.calls += 1
        raise RuntimeError("transient boom")


class TestAttemptAccounting:
    def _build(self):
        mediator = Mediator(name="attempts", timeout=0.5, max_retries=8)
        mediator.executor.config.retry_backoff = 0.2
        mediator.register_wrapper("w0", _AlwaysFailing("w0"))
        mediator.create_repository("r0")
        mediator.define_interface("Thing", [("id", "Long")], extent_name="things")
        mediator.add_extent("thing0", "Thing", "w0", "r0")
        return mediator

    def test_write_off_during_backoff_reports_true_attempts_in_both_engines(self):
        # Attempts fail instantly at t=0 and t=0.2; the third would start at
        # t=0.6, but the 0.5s deadline writes the call off mid-backoff.  Both
        # engines must report the two attempts actually made -- the abandoned
        # backoff is not an attempt.
        plan = implement(Submit("r0", Get("thing0"), extent_name="thing0"))
        mediator = self._build()
        try:
            barrier = mediator.executor.execute(plan, timeout=0.5)
            assert barrier.is_partial
            (barrier_report,) = barrier.reports
            stream = mediator.executor.execute_stream(plan, timeout=0.5)
            stream.to_list()
            (stream_report,) = stream.reports
            assert not barrier_report.available and not stream_report.available
            assert barrier_report.attempts == 2
            assert stream_report.attempts == barrier_report.attempts
            # Give the zombie workers time to observe the write-off and stop.
            time.sleep(0.3)
        finally:
            mediator.close()

"""Unit and property tests for the OQL value universe (Bag, Struct)."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.datamodel.values import Bag, Struct, make_bag, make_struct


class TestStruct:
    def test_attribute_and_subscript_access(self):
        s = make_struct(name="Mary", salary=200)
        assert s.name == "Mary"
        assert s["salary"] == 200

    def test_missing_field_raises_attribute_error(self):
        s = make_struct(name="Mary")
        with pytest.raises(AttributeError):
            _ = s.salary

    def test_structs_are_immutable(self):
        s = make_struct(name="Mary")
        with pytest.raises(AttributeError):
            s.name = "Sam"

    def test_equality_ignores_field_order(self):
        assert Struct({"a": 1, "b": 2}) == Struct({"b": 2, "a": 1})

    def test_equality_with_plain_dict(self):
        assert make_struct(a=1) == {"a": 1}

    def test_project_keeps_only_named_fields(self):
        s = make_struct(name="Mary", salary=200, id=1)
        assert s.project(["name"]) == make_struct(name="Mary")

    def test_renamed_applies_mapping(self):
        s = make_struct(n="Mary", s=50)
        assert s.renamed({"n": "name", "s": "salary"}) == make_struct(name="Mary", salary=50)

    def test_mapping_protocol(self):
        s = make_struct(a=1, b=2)
        assert set(s) == {"a", "b"}
        assert len(s) == 2
        assert dict(s) == {"a": 1, "b": 2}

    def test_hash_equal_structs_collide(self):
        assert hash(make_struct(a=1)) == hash(Struct({"a": 1}))

    def test_fields_returns_copy(self):
        s = make_struct(a=1)
        fields = s.fields()
        fields["a"] = 99
        assert s.a == 1


class TestBag:
    def test_equality_ignores_order(self):
        assert make_bag(1, 2, 3) == make_bag(3, 1, 2)

    def test_equality_respects_multiplicity(self):
        assert make_bag(1, 1, 2) != make_bag(1, 2, 2)
        assert make_bag(1, 1) != make_bag(1)

    def test_union_adds_multiplicities(self):
        assert make_bag("Mary").union(make_bag("Sam")) == make_bag("Mary", "Sam")
        assert make_bag(1).union(make_bag(1)) == make_bag(1, 1)

    def test_paper_answer_bag(self):
        assert make_bag("Mary", "Sam") == Bag(["Sam", "Mary"])

    def test_flatten_one_level(self):
        nested = Bag([Bag([1, 2]), Bag([3])])
        assert nested.flatten() == make_bag(1, 2, 3)

    def test_flatten_leaves_scalars(self):
        assert make_bag(1, 2).flatten() == make_bag(1, 2)

    def test_map_and_filter(self):
        bag = make_bag(1, 2, 3)
        assert bag.map(lambda x: x * 10) == make_bag(10, 20, 30)
        assert bag.filter(lambda x: x > 1) == make_bag(2, 3)

    def test_distinct(self):
        assert make_bag(1, 1, 2).distinct() == make_bag(1, 2)

    def test_contains_and_len(self):
        bag = make_bag("a", "b")
        assert "a" in bag
        assert len(bag) == 2

    def test_bag_of_unhashable_elements_compares(self):
        left = Bag([{"a": 1}, {"a": 2}])
        right = Bag([{"a": 2}, {"a": 1}])
        assert left == right

    def test_add_and_extend(self):
        bag = Bag()
        bag.add(1)
        bag.extend([2, 3])
        assert bag == make_bag(1, 2, 3)

    def test_sorted_is_deterministic(self):
        assert make_bag(3, 1, 2).sorted(key=lambda x: x) == [1, 2, 3]


class TestBagProperties:
    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_union_is_commutative(self, left, right):
        assert Bag(left).union(Bag(right)) == Bag(right).union(Bag(left))

    @given(st.lists(st.integers()), st.lists(st.integers()), st.lists(st.integers()))
    def test_union_is_associative(self, a, b, c):
        left = Bag(a).union(Bag(b)).union(Bag(c))
        right = Bag(a).union(Bag(b).union(Bag(c)))
        assert left == right

    @given(st.lists(st.integers()))
    def test_union_with_empty_is_identity(self, items):
        assert Bag(items).union(Bag()) == Bag(items)

    @given(st.lists(st.integers()))
    def test_length_of_union_is_sum(self, items):
        assert len(Bag(items).union(Bag(items))) == 2 * len(items)

    @given(st.lists(st.integers()))
    def test_distinct_is_idempotent(self, items):
        bag = Bag(items)
        assert bag.distinct() == bag.distinct().distinct()

    @given(st.lists(st.integers(min_value=-5, max_value=5)))
    def test_equality_is_permutation_invariant(self, items):
        assert Bag(items) == Bag(list(reversed(items)))

"""Tests for local transformation maps (paper Section 2.2.2)."""

import pytest

from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.values import Struct
from repro.errors import SchemaError


def personprime_map():
    """The paper's map: ((person0=personprime0), (name=n), (salary=s))."""
    return LocalTransformationMap.from_pairs(
        [("person0", "personprime0"), ("name", "n"), ("salary", "s")]
    )


class TestLocalTransformationMap:
    def test_identity_map_is_identity(self):
        identity = LocalTransformationMap.identity()
        assert identity.is_identity()
        assert identity.attribute_to_source("name") == "name"
        assert identity.source_collection_name("person0") == "person0"

    def test_paper_map_relation_equivalence(self):
        mapping = personprime_map()
        assert mapping.source_collection_name("personprime0") == "person0"

    def test_paper_map_attribute_directions(self):
        mapping = personprime_map()
        assert mapping.attribute_to_source("n") == "name"
        assert mapping.attribute_to_source("s") == "salary"
        assert mapping.attribute_to_mediator("name") == "n"
        assert mapping.attribute_to_mediator("salary") == "s"

    def test_unmapped_attributes_pass_through(self):
        mapping = personprime_map()
        assert mapping.attribute_to_source("id") == "id"
        assert mapping.attribute_to_mediator("id") == "id"

    def test_row_to_mediator_renames_fields(self):
        mapping = personprime_map()
        row = mapping.row_to_mediator({"name": "Mary", "salary": 200})
        assert row == Struct({"n": "Mary", "s": 200})

    def test_from_pairs_empty_is_identity(self):
        assert LocalTransformationMap.from_pairs([]).is_identity()

    def test_duplicate_source_attribute_is_rejected(self):
        mapping = LocalTransformationMap.from_pairs(
            [("t", "e"), ("name", "a"), ("name", "b")]
        )
        with pytest.raises(SchemaError):
            mapping.validate()

    def test_duplicate_mediator_attribute_is_rejected(self):
        mapping = LocalTransformationMap.from_pairs(
            [("t", "e"), ("name", "a"), ("salary", "a")]
        )
        with pytest.raises(SchemaError):
            mapping.validate()

    def test_describe_round_trips_the_paper_syntax(self):
        assert personprime_map().describe() == [
            "(person0=personprime0)",
            "(name=n)",
            "(salary=s)",
        ]

    def test_describe_identity_is_empty(self):
        assert LocalTransformationMap.identity().describe() == []

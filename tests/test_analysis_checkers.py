"""Self-tests for the repro.analysis checkers.

Each ``tests/analysis_fixtures/bad_*`` directory seeds known violations,
marked in-source with ``# seed: <rule>`` comments so these tests can assert
exact file/line reporting without hard-coding line numbers.  The ``clean``
fixture exercises the correct counterpart of every seeded pattern and must
produce zero findings (no false positives).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import load_spec_file, run_suite

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def seed_lines(fixture: str) -> dict[str, list[tuple[str, int]]]:
    """Map rule -> [(module, line)] from ``# seed:`` markers in a fixture."""
    seeds: dict[str, list[tuple[str, int]]] = {}
    root = FIXTURES / fixture
    for path in sorted(root.glob("*.py")):
        for lineno, text in enumerate(path.read_text().splitlines(), start=1):
            if "# seed:" not in text:
                continue
            rules = text.split("# seed:", 1)[1]
            for rule in rules.split(","):
                seeds.setdefault(rule.strip(), []).append((path.name, lineno))
    return seeds


def run_fixture(fixture: str):
    root = FIXTURES / fixture
    spec = load_spec_file(root / "analysis_spec.py")
    return run_suite(root, spec=spec, baseline_path=None)


def reported(result) -> set[tuple[str, str, int]]:
    return {(f.rule, f.path, f.line) for f in result.findings}


@pytest.mark.parametrize("fixture", ["bad_locks", "bad_dispatch", "bad_hygiene"])
def test_every_seeded_violation_is_reported_at_its_line(fixture):
    seeds = seed_lines(fixture)
    assert seeds, f"fixture {fixture} has no # seed: markers"
    got = reported(run_fixture(fixture))
    for rule, sites in seeds.items():
        for module, line in sites:
            assert (rule, module, line) in got, (
                f"{fixture}: expected {rule} at {module}:{line}, got {sorted(got)}"
            )


@pytest.mark.parametrize("fixture", ["bad_locks", "bad_dispatch", "bad_hygiene"])
def test_no_unseeded_findings(fixture):
    """The checkers report exactly the seeded lines -- nothing extra."""
    seeds = seed_lines(fixture)
    seeded = {
        (rule, module, line)
        for rule, sites in seeds.items()
        for module, line in sites
    }
    assert reported(run_fixture(fixture)) == seeded


def test_clean_fixture_has_no_false_positives():
    result = run_fixture("clean")
    assert result.findings == [], [f.render() for f in result.findings]
    assert result.ok


def test_lock_checker_names_the_guarding_lock():
    result = run_fixture("bad_locks")
    messages = [f.message for f in result.findings if f.rule == "unguarded-write"]
    assert any("`self.count`" in m and "`_lock`" in m for m in messages)
    assert any("`self.rows.append(...)`" in m for m in messages)


def test_dispatch_checker_names_the_missing_subclass():
    result = run_fixture("bad_dispatch")
    missing = [f for f in result.findings if f.rule == "missing-arm"]
    assert len(missing) == 1
    assert "`Mul`" in missing[0].message


def test_hygiene_checker_exempts_earlier_cancellation_handler():
    """`cancellation_aware` routes StreamClosed before the broad catch."""
    result = run_fixture("bad_hygiene")
    scopes = {f.scope for f in result.findings if f.rule == "broad-except"}
    assert scopes == {"swallow_everything"}


def cli(root: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", str(root), *extra],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


@pytest.mark.parametrize("fixture", ["bad_locks", "bad_dispatch", "bad_hygiene"])
def test_cli_exits_nonzero_on_seeded_fixture(fixture):
    proc = cli(FIXTURES / fixture, "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "new" in proc.stdout


def test_cli_exits_zero_on_clean_fixture():
    proc = cli(FIXTURES / "clean", "--no-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_baseline_suppresses_known_findings(tmp_path):
    """--write-baseline then a re-run: same findings, exit 0 after justification."""
    root = FIXTURES / "bad_hygiene"
    baseline = tmp_path / "baseline.txt"
    proc = cli(root, "--baseline", str(baseline), "--write-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # The writer leaves TODO justifications; a human must fill them in.
    text = baseline.read_text().replace("TODO: justify this exemption", "fixture")
    baseline.write_text(text)
    proc = cli(root, "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "2 baselined, 0 new" in proc.stdout


def test_stale_baseline_entries_fail_the_run(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "hygiene|broad-except|nope.py|gone|Exception#1 :: obsolete entry\n"
    )
    proc = cli(FIXTURES / "clean", "--baseline", str(baseline))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "stale" in proc.stdout


def test_unjustified_baseline_entry_is_an_error(tmp_path):
    spec = load_spec_file(FIXTURES / "bad_hygiene" / "analysis_spec.py")
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("hygiene|broad-except|worker.py|swallow_everything|Exception#1\n")
    result = run_suite(FIXTURES / "bad_hygiene", spec=spec, baseline_path=baseline)
    assert result.baseline_errors
    assert not result.ok

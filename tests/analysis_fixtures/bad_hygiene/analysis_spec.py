from repro.analysis import Spec

SPEC = Spec(scan=(".",), hygiene_scan=("",))

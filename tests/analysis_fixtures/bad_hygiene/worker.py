"""Seeded cancellation-hygiene violations, each marked with a seed comment."""

import time

from repro.runtime.backpressure import StreamClosed


def swallow_everything(queue):
    try:
        return queue.get()
    except Exception:  # seed: broad-except
        return None


def raw_backoff():
    time.sleep(0.5)  # seed: raw-sleep


def cancellation_aware(queue):
    # Not a finding: StreamClosed is routed explicitly before the broad catch.
    try:
        return queue.get()
    except StreamClosed:
        raise
    except Exception:
        return None

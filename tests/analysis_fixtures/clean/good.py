"""Correct counterparts of every seeded fixture violation: zero findings."""

import threading

from repro.runtime import cancellation
from repro.runtime.backpressure import StreamClosed


class Node:
    pass


class Add(Node):
    pass


class Sub(Node):
    pass


def render(node):
    if isinstance(node, Add):
        return "+"
    if isinstance(node, Sub):
        return "-"
    raise ValueError(f"unrenderable node {node!r}")


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.count = 0
        self.rows = []

    def increment(self):
        with self._lock:
            self.count += 1
            self.rows.append(self.count)

    def ordered(self):
        with self._lock:
            with self._aux:
                self.count += 1

    def snapshot(self):
        with self._lock:
            rows = list(self.rows)
        yield from rows

    def backoff(self):
        cancellation.sleep(0.01)
        with self._lock:
            self.count += 1


def drain(queue):
    try:
        return queue.get()
    except StreamClosed:
        raise
    except Exception:
        return None

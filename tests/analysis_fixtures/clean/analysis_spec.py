from repro.analysis import DispatchSite, Hierarchy, LockComponent, LockDecl, Spec

SPEC = Spec(
    scan=(".",),
    lock_components=(
        LockComponent(
            module="good.py",
            cls="Stats",
            locks=(
                LockDecl(attr="_lock", kind="Lock", guards=("count", "rows"), rank=10),
                LockDecl(attr="_aux", kind="Lock", guards=(), rank=20),
            ),
        ),
    ),
    hierarchies=(Hierarchy(name="node", module="good.py", root="Node"),),
    dispatch_sites=(
        DispatchSite(
            name="render",
            module="good.py",
            hierarchy="node",
            functions=("render",),
        ),
    ),
    hygiene_scan=("",),
)

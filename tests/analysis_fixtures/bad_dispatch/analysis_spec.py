from repro.analysis import DispatchSite, Hierarchy, Spec

SPEC = Spec(
    scan=(".",),
    hierarchies=(Hierarchy(name="node", module="algebra.py", root="Node"),),
    dispatch_sites=(
        DispatchSite(
            name="render",
            module="visit.py",
            hierarchy="node",
            functions=("render",),
            # Seeded stale exemption: render() handles Sub, so this entry
            # must be reported as shed-able.
            exempt=(("Sub", "seeded stale exemption"),),
        ),
    ),
)

"""A miniature operator hierarchy for the dispatch fixture."""


class Node:
    pass


class Add(Node):
    pass


class Sub(Node):
    pass


class Mul(Node):
    pass

"""A dispatch ladder that silently misses one subclass (Mul)."""

from algebra import Add, Sub


def render(node):  # seed: missing-arm, stale-exemption
    if isinstance(node, Add):
        return "+"
    if isinstance(node, Sub):
        return "-"
    raise ValueError(f"unrenderable node {node!r}")

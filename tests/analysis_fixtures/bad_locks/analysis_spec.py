from repro.analysis import LockComponent, LockDecl, Spec

SPEC = Spec(
    scan=(".",),
    lock_components=(
        LockComponent(
            module="counters.py",
            cls="Stats",
            locks=(
                LockDecl(attr="_lock", kind="Lock", guards=("count", "rows"), rank=10),
                LockDecl(attr="_aux", kind="Lock", guards=(), rank=20),
            ),
        ),
    ),
)

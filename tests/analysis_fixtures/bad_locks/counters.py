"""Seeded lock-discipline violations, each marked with a seed comment."""

import threading
import time


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.count = 0
        self.rows = []

    def locked_increment(self):
        with self._lock:
            self.count += 1

    def unguarded_increment(self):
        self.count += 1  # seed: unguarded-write

    def unguarded_append(self):
        self.rows.append(1)  # seed: unguarded-write

    def inverted_order(self):
        with self._aux:
            with self._lock:  # seed: lock-order
                self.count += 1

    def generator_under_lock(self):
        with self._lock:
            yield self.count  # seed: lock-across-yield

    def sleep_under_lock(self):
        with self._lock:
            time.sleep(0.01)  # seed: blocking-under-lock
            self.count += 1

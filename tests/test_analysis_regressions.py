"""Regression tests for the defects surfaced by ``python -m repro.analysis``.

The suite flagged three real bug classes (see ``src/repro/analysis/``):

* ``Executor._active_streams`` was mutated and iterated outside the
  ``_active`` condition (locks:unguarded-write);
* the barrier retry backoffs used raw ``time.sleep`` instead of the
  cancellation-aware ``cancellation.sleep`` (hygiene:raw-sleep);
* the streaming open/pull paths caught ``StreamClosed`` -- the consumer
  hanging up -- in the same broad handler as source deaths, burning retry
  and resume budget reopening a stream nobody is reading
  (hygiene:broad-except).

The checkers themselves now pin the first two (any reintroduction is a new,
non-baselined finding); these tests pin the observable behavior.
"""

import threading

import pytest

from repro import Mediator
from repro.algebra.capabilities import CapabilitySet
from repro.runtime.backpressure import StreamClosed
from repro.wrappers.base import Wrapper

ROWS = [{"id": i, "name": f"p{i}", "salary": i * 10} for i in range(10)]
QUERY = "select x.name from x in person0 where x.salary > 40 limit 2"


class InMemoryWrapper(Wrapper):
    """Ships the whole extent for a bare ``get``; the mediator compensates."""

    CAPABILITIES = ("get",)

    def __init__(self, name, rows):
        super().__init__(name, CapabilitySet.of(*self.CAPABILITIES))
        self.rows = rows
        self.submitted: list[str] = []

    def _execute(self, expression):
        self.submitted.append(expression.to_text())
        return [dict(row) for row in self.rows]

    def source_attributes(self, collection):
        return ["id", "name", "salary"]


class HangupWrapper(InMemoryWrapper):
    """Simulates the consumer having already gone away at open time.

    Declares the full pushdown set so the expression is degradable: a
    regression would show up as ladder re-submissions, not just retries.
    """

    CAPABILITIES = ("get", "project", "select", "limit")

    def _execute(self, expression):
        self.submitted.append(expression.to_text())
        raise StreamClosed("consumer went away")


def build_mediator(wrapper, **mediator_kwargs):
    mediator = Mediator(name="regress", **mediator_kwargs)
    mediator.register_wrapper("w0", wrapper)
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator


def test_stream_registry_is_safe_under_concurrent_open_and_inspection():
    """Threads opening/draining streams race `_live_streams` snapshots.

    Before the fix, ``execute_stream`` added to ``Executor._active_streams``
    and ``_live_streams`` iterated it without holding ``_active``: a set
    mutating mid-iteration raises RuntimeError (or silently corrupts), and
    this loop made that a crash rather than a heisenbug.
    """
    wrapper = InMemoryWrapper("w0", ROWS)
    mediator = build_mediator(wrapper)
    errors: list[BaseException] = []
    start = threading.Barrier(5)

    def churn():
        try:
            start.wait(timeout=10)
            for _ in range(25):
                rows = list(mediator.query_stream(QUERY).iter_rows())
                assert rows == ["p5", "p6"]
        except BaseException as exc:  # noqa: BLE001 - harvested below
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(4)]
    for thread in threads:
        thread.start()
    start.wait(timeout=10)
    while any(thread.is_alive() for thread in threads):
        mediator.executor._live_streams()
    for thread in threads:
        thread.join(timeout=30)
    mediator.close()
    assert errors == [], errors


def test_consumer_hangup_is_not_retried_or_degraded():
    """StreamClosed at open time must not burn the retry/degradation budget.

    Before the fix the broad failure handler treated the consumer hanging up
    like a source death: with ``max_retries=3`` and a degradable pushdown it
    re-submitted progressively smaller expressions to a source whose rows
    nobody would ever read.  Now the hangup propagates after exactly one
    submit.
    """
    wrapper = HangupWrapper("w0", ROWS)
    mediator = build_mediator(wrapper, max_retries=3)
    stream = mediator.query_stream(QUERY)
    with pytest.raises(StreamClosed):
        list(stream.iter_rows())
    assert len(wrapper.submitted) == 1, wrapper.submitted
    mediator.close()


def test_transient_failures_still_retry_after_the_hangup_fix():
    """The StreamClosed carve-out must not weaken real failure recovery."""

    class FlakyWrapper(InMemoryWrapper):
        def __init__(self, name, rows):
            super().__init__(name, rows)
            self._failures = 2

        def _execute(self, expression):
            from repro.errors import UnavailableSourceError

            self.submitted.append(expression.to_text())
            if self._failures > 0:
                self._failures -= 1
                raise UnavailableSourceError(self.name, "transient outage")
            return [dict(row) for row in self.rows]

    wrapper = FlakyWrapper("w0", ROWS)
    mediator = build_mediator(wrapper, max_retries=3)
    rows = list(mediator.query_stream(QUERY).iter_rows())
    assert rows == ["p5", "p6"]
    assert len(wrapper.submitted) == 3, wrapper.submitted
    mediator.close()

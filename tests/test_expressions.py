"""Tests for the scalar expression language."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.algebra.expressions import (
    Arithmetic,
    BagExpr,
    BooleanExpr,
    Comparison,
    Const,
    FunctionCall,
    Path,
    StructExpr,
    Var,
    conjunction,
    contains_subquery,
    split_conjuncts,
    walk_expr,
)
from repro.datamodel.values import Bag, Struct
from repro.errors import QueryExecutionError


def x_salary() -> Path:
    return Path(Var("x"), "salary")


ENV = {"x": Struct({"name": "Mary", "salary": 200})}


class TestEvaluation:
    def test_const_and_var(self):
        assert Const(5).evaluate({}) == 5
        assert Var("x").evaluate(ENV).name == "Mary"

    def test_unbound_variable_raises(self):
        with pytest.raises(QueryExecutionError):
            Var("y").evaluate(ENV)

    def test_path_over_struct_and_dict(self):
        assert x_salary().evaluate(ENV) == 200
        assert Path(Var("x"), "salary").evaluate({"x": {"salary": 50}}) == 50

    def test_path_missing_attribute_raises(self):
        with pytest.raises(QueryExecutionError):
            Path(Var("x"), "age").evaluate(ENV)

    def test_comparisons(self):
        assert Comparison(">", x_salary(), Const(10)).evaluate(ENV)
        assert not Comparison("<", x_salary(), Const(10)).evaluate(ENV)
        assert Comparison("=", Path(Var("x"), "name"), Const("Mary")).evaluate(ENV)
        assert Comparison("!=", Path(Var("x"), "name"), Const("Sam")).evaluate(ENV)

    def test_comparison_with_none_is_false(self):
        assert not Comparison(">", Const(None), Const(1)).evaluate({})

    def test_comparison_with_incompatible_types_is_false(self):
        assert not Comparison(">", Const("abc"), Const(1)).evaluate({})

    def test_boolean_connectives(self):
        t = Comparison(">", x_salary(), Const(10))
        f = Comparison("<", x_salary(), Const(10))
        assert BooleanExpr("and", (t, t)).evaluate(ENV)
        assert not BooleanExpr("and", (t, f)).evaluate(ENV)
        assert BooleanExpr("or", (f, t)).evaluate(ENV)
        assert BooleanExpr("not", (f,)).evaluate(ENV)

    def test_arithmetic(self):
        assert Arithmetic("+", x_salary(), Const(50)).evaluate(ENV) == 250
        assert Arithmetic("*", Const(3), Const(4)).evaluate({}) == 12
        with pytest.raises(QueryExecutionError):
            Arithmetic("/", Const(1), Const(0)).evaluate({})

    def test_struct_constructor(self):
        expr = StructExpr((("name", Path(Var("x"), "name")), ("double", Arithmetic("*", x_salary(), Const(2)))))
        assert expr.evaluate(ENV) == Struct({"name": "Mary", "double": 400})

    def test_bag_constructor_flattens_nested_bags(self):
        expr = BagExpr((Const(1), Const(2)))
        assert expr.evaluate({}) == Bag([1, 2])

    def test_aggregates(self):
        bag = Const(Bag([1, 2, 3]))
        assert FunctionCall("sum", (bag,)).evaluate({}) == 6
        assert FunctionCall("count", (bag,)).evaluate({}) == 3
        assert FunctionCall("min", (bag,)).evaluate({}) == 1
        assert FunctionCall("max", (bag,)).evaluate({}) == 3
        assert FunctionCall("avg", (bag,)).evaluate({}) == 2

    def test_aggregates_over_empty_bag(self):
        empty = Const(Bag())
        assert FunctionCall("sum", (empty,)).evaluate({}) == 0
        assert FunctionCall("count", (empty,)).evaluate({}) == 0
        assert FunctionCall("min", (empty,)).evaluate({}) is None

    def test_flatten_and_union_functions(self):
        nested = Const(Bag([Bag([1]), Bag([2, 3])]))
        assert FunctionCall("flatten", (nested,)).evaluate({}) == Bag([1, 2, 3])
        assert FunctionCall("union", (Const(Bag([1])), Const(Bag([2])))).evaluate({}) == Bag([1, 2])

    def test_unknown_function_raises(self):
        with pytest.raises(QueryExecutionError):
            FunctionCall("nope", (Const(1),)).evaluate({})


class TestStaticAnalysis:
    def test_free_variables(self):
        expr = BooleanExpr("and", (Comparison(">", x_salary(), Const(10)), Comparison("=", Path(Var("y"), "id"), Path(Var("x"), "id"))))
        assert expr.free_variables() == {"x", "y"}

    def test_attribute_paths(self):
        expr = Comparison("=", Path(Var("x"), "id"), Path(Var("y"), "dept"))
        assert expr.attribute_paths() == {("x", "id"), ("y", "dept")}

    def test_rename_attributes(self):
        expr = Comparison(">", Path(Var("x"), "s"), Const(10))
        renamed = expr.rename_attributes({"s": "salary"})
        assert renamed.to_oql() == "x.salary > 10"

    def test_to_oql_round_trip_text(self):
        expr = BooleanExpr("and", (Comparison(">", x_salary(), Const(10)), Comparison("=", Path(Var("x"), "name"), Const("Mary"))))
        assert expr.to_oql() == '(x.salary > 10 and x.name = "Mary")'

    def test_walk_expr_visits_every_node(self):
        expr = StructExpr((("a", Arithmetic("+", x_salary(), Const(1))),))
        kinds = [type(node).__name__ for node in walk_expr(expr)]
        assert "StructExpr" in kinds and "Arithmetic" in kinds and "Const" in kinds

    def test_contains_subquery_false_for_plain_expressions(self):
        assert not contains_subquery(x_salary())

    def test_equality_is_structural(self):
        assert Comparison(">", x_salary(), Const(10)) == Comparison(">", x_salary(), Const(10))
        assert Comparison(">", x_salary(), Const(10)) != Comparison(">", x_salary(), Const(11))


class TestConjunctions:
    def test_conjunction_of_none_and_single(self):
        assert conjunction([]) is None
        single = Comparison(">", x_salary(), Const(10))
        assert conjunction([single]) is single

    def test_split_conjuncts_flattens_nested_ands(self):
        a = Comparison(">", x_salary(), Const(10))
        b = Comparison("<", x_salary(), Const(100))
        c = Comparison("=", Path(Var("x"), "name"), Const("Mary"))
        combined = BooleanExpr("and", (a, BooleanExpr("and", (b, c))))
        assert split_conjuncts(combined) == [a, b, c]

    def test_split_conjuncts_of_none(self):
        assert split_conjuncts(None) == []

    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=-1000, max_value=1000))
    def test_comparison_matches_python_semantics(self, left, right):
        env = {}
        assert Comparison("<", Const(left), Const(right)).evaluate(env) == (left < right)
        assert Comparison(">=", Const(left), Const(right)).evaluate(env) == (left >= right)
        assert Comparison("=", Const(left), Const(right)).evaluate(env) == (left == right)

    @given(st.integers(min_value=-100, max_value=100), st.integers(min_value=1, max_value=100))
    def test_arithmetic_matches_python_semantics(self, a, b):
        assert Arithmetic("+", Const(a), Const(b)).evaluate({}) == a + b
        assert Arithmetic("-", Const(a), Const(b)).evaluate({}) == a - b
        assert Arithmetic("*", Const(a), Const(b)).evaluate({}) == a * b
        assert Arithmetic("/", Const(a), Const(b)).evaluate({}) == a / b

"""Integration tests: every worked example from the paper, end to end."""

import pytest

from repro import Bag, LocalTransformationMap, Mediator, RelationalWrapper, Struct
from repro.errors import NameResolutionError, TypeConflictError
from repro.sources import RelationalEngine, SimulatedServer
from tests.conftest import build_paper_mediator, build_person_engine


class TestSection12DataModel:
    """Section 1.2: the mediator data model and the introductory query."""

    def test_query_over_implicit_extent_returns_mary_and_sam(self, paper_mediator):
        result = paper_mediator.query(
            "select x.name from x in person where x.salary > 10"
        )
        assert result.data == Bag(["Mary", "Sam"])

    def test_query_over_single_extent_returns_mary(self, paper_mediator):
        result = paper_mediator.query(
            "select x.name from x in person0 where x.salary > 10"
        )
        assert result.data == Bag(["Mary"])

    def test_explicit_union_of_extents(self, paper_mediator):
        result = paper_mediator.query(
            "select x.name from x in union(person0, person1) where x.salary > 10"
        )
        assert result.data == Bag(["Mary", "Sam"])

    def test_adding_a_source_changes_no_query(self, paper_mediator):
        """Section 1.2: 'The same query would then access three data sources.'"""
        _, server2 = build_person_engine(2, [{"id": 9, "name": "Olga", "salary": 80}])
        paper_mediator.register_wrapper("w2", RelationalWrapper("w2", server2))
        paper_mediator.create_repository("r2")
        paper_mediator.add_extent("person2", "Person", "w2", "r2")
        result = paper_mediator.query(
            "select x.name from x in person where x.salary > 10"
        )
        assert result.data == Bag(["Mary", "Sam", "Olga"])

    def test_metaextent_collection_lists_every_extent(self, paper_mediator):
        result = paper_mediator.query("select m.name from m in metaextent")
        assert result.data == Bag(["person0", "person1"])

    def test_metaextent_filtered_by_interface(self, paper_mediator):
        result = paper_mediator.query(
            'select m.name from m in metaextent where m.interface = "Person"'
        )
        assert result.data == Bag(["person0", "person1"])


class TestSection13PartialEvaluation:
    """Section 1.3 / Section 4: query processing with unavailable data."""

    def test_unavailable_source_yields_partial_answer(self, paper_mediator_with_servers):
        mediator, servers = paper_mediator_with_servers
        servers[0].take_down()
        result = mediator.query("select x.name from x in person where x.salary > 10")
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)
        assert result.data == Bag()
        assert result.partial_query == (
            'union(select x0.name from x0 in person0 where x0.salary > 10, Bag("Sam"))'
        )

    def test_partial_answer_resubmitted_after_recovery_gives_full_answer(
        self, paper_mediator_with_servers
    ):
        mediator, servers = paper_mediator_with_servers
        servers[0].take_down()
        partial = mediator.query("select x.name from x in person where x.salary > 10")
        servers[0].bring_up()
        recovered = mediator.resubmit(partial)
        assert not recovered.is_partial
        assert recovered.data == Bag(["Mary", "Sam"])

    def test_partial_answer_text_can_be_issued_as_a_new_query(
        self, paper_mediator_with_servers
    ):
        """The answer is a query: submitting its text returns the original answer."""
        mediator, servers = paper_mediator_with_servers
        servers[0].take_down()
        partial = mediator.query("select x.name from x in person where x.salary > 10")
        servers[0].bring_up()
        assert mediator.query(partial.partial_query).data == Bag(["Mary", "Sam"])

    def test_all_sources_down_returns_pure_query(self, paper_mediator_with_servers):
        mediator, servers = paper_mediator_with_servers
        for server in servers:
            server.take_down()
        result = mediator.query("select x.name from x in person where x.salary > 10")
        assert result.is_partial
        assert set(result.unavailable_sources) == {"person0", "person1"}
        assert "person0" in result.partial_query and "person1" in result.partial_query

    def test_resubmitting_a_complete_result_is_a_no_op(self, paper_mediator):
        result = paper_mediator.query("select x.name from x in person")
        assert paper_mediator.resubmit(result) is result


class TestSection22SubtypingAndMaps:
    """Section 2.2: subtyping, person*, and the PersonPrime map."""

    def mediator_with_students(self):
        mediator, servers = build_paper_mediator()
        engine = RelationalEngine("studentdb")
        engine.create_table(
            "student0",
            rows=[{"id": 7, "name": "Nina", "salary": 30, "university": "UMD"}],
        )
        server = SimulatedServer("student-host", engine)
        mediator.register_wrapper("w2", RelationalWrapper("w2", server))
        mediator.create_repository("r2")
        mediator.define_interface("Student", [("university", "String")], supertype="Person",
                                  extent_name="student")
        mediator.add_extent("student0", "Student", "w2", "r2")
        return mediator

    def test_person_extent_excludes_subtype_extents(self):
        mediator = self.mediator_with_students()
        result = mediator.query("select x.name from x in person")
        assert result.data == Bag(["Mary", "Sam"])

    def test_person_star_includes_subtype_extents(self):
        mediator = self.mediator_with_students()
        result = mediator.query("select x.name from x in person*")
        assert result.data == Bag(["Mary", "Sam", "Nina"])

    def test_personprime_without_map_is_a_type_conflict(self, paper_mediator):
        paper_mediator.define_interface(
            "PersonPrime", [("n", "String"), ("s", "Short")], extent_name="personprime"
        )
        paper_mediator.add_extent(
            "personprime0", "PersonPrime", "w0", "r0", source_collection="person0"
        )
        with pytest.raises(TypeConflictError):
            paper_mediator.query("select x.n from x in personprime0")

    def test_personprime_with_map_resolves_the_conflict(self, paper_mediator):
        """Section 2.2.2: map ((person0=personprime0),(name=n),(salary=s))."""
        paper_mediator.define_interface(
            "PersonPrime", [("n", "String"), ("s", "Short")], extent_name="personprime"
        )
        mapping = LocalTransformationMap.from_pairs(
            [("person0", "personprime0"), ("name", "n"), ("salary", "s")]
        )
        paper_mediator.add_extent("personprime0", "PersonPrime", "w0", "r0", map=mapping)
        result = paper_mediator.query("select x.n from x in personprime0 where x.s > 10")
        assert result.data == Bag(["Mary"])


class TestSection23Views:
    """Sections 2.2.3 and 2.3: views, reconciliation functions, dissimilar structures."""

    def test_double_view_sums_salaries_across_sources(self, paper_mediator):
        paper_mediator.define_view(
            "double",
            "select struct(name: x.name, salary: x.salary + y.salary) "
            "from x in person0 and y in person1 where x.id = y.id",
        )
        result = paper_mediator.query("double")
        assert result.data == Bag([Struct({"name": "Mary", "salary": 250})])

    def test_multiple_view_aggregates_over_person_star(self, paper_mediator):
        paper_mediator.define_view(
            "multiple",
            "select struct(name: x.name, salary: sum(select z.salary from z in person "
            "where x.id = z.id)) from x in person*",
        )
        result = paper_mediator.query("multiple")
        assert result.data == Bag(
            [
                Struct({"name": "Mary", "salary": 250}),
                Struct({"name": "Sam", "salary": 250}),
            ]
        )

    def test_personnew_view_reconciles_dissimilar_structures(self, paper_mediator):
        """Section 2.3: PersonTwo has regular and consult instead of salary."""
        engine = RelationalEngine("persontwodb")
        engine.create_table(
            "persontwo0",
            rows=[{"name": "Olga", "regular": 40, "consult": 15}],
        )
        server = SimulatedServer("persontwo-host", engine)
        paper_mediator.register_wrapper("w5", RelationalWrapper("w5", server))
        paper_mediator.create_repository("r5")
        paper_mediator.define_interface(
            "PersonTwo",
            [("name", "String"), ("regular", "Short"), ("consult", "Short")],
            extent_name="persontwo",
        )
        paper_mediator.add_extent("persontwo0", "PersonTwo", "w5", "r5")
        paper_mediator.define_view(
            "personnew",
            "bag(select struct(name: x.name, salary: x.salary) from x in person, "
            "select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)",
        )
        result = paper_mediator.query("select p.name from p in flatten(personnew)")
        assert result.data == Bag(["Mary", "Sam", "Olga"])

    def test_view_over_view(self, paper_mediator):
        paper_mediator.define_view("rich", "select x from x in person where x.salary > 100")
        paper_mediator.define_view("rich_names", "select r.name from r in rich")
        assert paper_mediator.query("rich_names").data == Bag(["Mary"])

    def test_statement_updates_define_views(self, paper_mediator):
        paper_mediator.execute_statement(
            "define cheap as select x.name from x in person where x.salary < 100"
        )
        assert paper_mediator.query("cheap").data == Bag(["Sam"])


class TestScalarQueriesAndErrors:
    def test_aggregate_query_returns_scalar(self, paper_mediator):
        assert paper_mediator.query("sum(select z.salary from z in person)").data == 250
        assert paper_mediator.query("count(select z from z in person)").data == 2

    def test_unknown_collection_is_a_name_resolution_error(self, paper_mediator):
        with pytest.raises(NameResolutionError):
            paper_mediator.query("select x from x in nowhere")

    def test_explain_reports_plans_without_executing(self, paper_mediator_with_servers):
        mediator, servers = paper_mediator_with_servers
        planned = mediator.explain("select x.name from x in person where x.salary > 10")
        assert planned.optimized is not None
        assert "submit" in planned.optimized.logical.to_text()
        assert servers[0].statistics.requests == 0

    def test_statistics_report(self, paper_mediator):
        paper_mediator.query("select x.name from x in person")
        stats = paper_mediator.statistics()
        assert stats["exec_signatures"] >= 2
        assert stats["schema_version"] > 0

"""The MediatorServer serving layer: admission verdicts, fairness, deadlines,
backpressure, and clean shutdown.

Most tests drive a single-worker server and park that worker deterministically
by submitting a *streamed* query whose client does not read: the worker fills
the bounded row queue and stalls (backpressure), with no sleeps or simulated
latency involved.  Reading the blocker's rows releases the worker.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Mediator, MediatorServer, RelationalWrapper, ServerConfig
from repro.errors import AdmissionError
from repro.runtime.admission import ADMITTED, CLOSED, QUEUE_TIMEOUT, REJECTED, QueueClosed
from repro.sources import RelationalEngine, SimulatedServer

ROWS = [{"id": i, "name": f"p{i}", "salary": i * 10} for i in range(40)]
QUERY = "select x.name from x in person0"


def build_mediator(**mediator_kwargs):
    engine = RelationalEngine(name="db0")
    engine.create_table("person0", rows=[dict(row) for row in ROWS])
    server = SimulatedServer(name="h0", store=engine)
    mediator = Mediator(name="serving", **mediator_kwargs)
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, server


def park_worker(server, buffer_rows):
    """Occupy one worker with a stream nobody reads; returns the blocker future.

    The worker stalls once the client-side row queue holds ``buffer_rows``
    rows.  Release it with ``list(blocker.rows())`` or ``blocker.close()``.
    """
    blocker = server.submit(QUERY, stream=True)
    deadline = time.monotonic() + 5
    while blocker.stream_depth < buffer_rows:
        assert time.monotonic() < deadline, "worker never stalled on the stream"
        time.sleep(0.002)
    return blocker


class TestSubmitAndResult:
    def test_barrier_submission_round_trip(self):
        mediator, _ = build_mediator()
        with MediatorServer(mediator) as server:
            future = server.submit(QUERY)
            result = future.result(timeout=10)
            assert sorted(result.rows()) == sorted(f"p{i}" for i in range(40))
            assert future.done()
            report = future.report
            assert report.verdict == ADMITTED
            assert report.query == QUERY
            assert report.rows == 40
            assert not report.streamed and not report.is_partial
            assert report.queue_wait >= 0.0 and report.execution_time > 0.0
            assert report.error is None
        mediator.close()

    def test_results_match_direct_queries(self):
        mediator, _ = build_mediator()
        expected = sorted(map(repr, mediator.query(QUERY).rows()))
        with MediatorServer(mediator, ServerConfig(workers=3)) as server:
            futures = [server.submit(QUERY) for _ in range(12)]
            for future in futures:
                assert sorted(map(repr, future.result(timeout=10).rows())) == expected
        mediator.close()

    def test_mediator_error_settles_only_its_own_future(self):
        mediator, _ = build_mediator()
        with MediatorServer(mediator, ServerConfig(workers=1)) as server:
            bad = server.submit("select x.name from x in no_such_extent")
            good = server.submit(QUERY)
            with pytest.raises(Exception):
                bad.result(timeout=10)
            assert bad.report.error is not None
            # The worker survived the failure and served the next submission.
            assert len(good.result(timeout=10).rows()) == 40
        mediator.close()

    def test_result_times_out_while_pending(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=1, stream_buffer_rows=4))
        blocker = park_worker(server, 4)
        queued = server.submit(QUERY)
        with pytest.raises(TimeoutError):
            queued.result(timeout=0.05)
        assert list(blocker.rows()) and len(queued.result(timeout=10).rows()) == 40
        server.close()
        mediator.close()

    def test_mediator_serve_entry_point(self):
        mediator, _ = build_mediator()
        with mediator.serve(workers=2) as server:
            assert isinstance(server, MediatorServer)
            assert len(server.submit(QUERY).result(timeout=10).rows()) == 40
        mediator.close()


class TestStreaming:
    def test_streamed_rows_with_backpressure(self):
        mediator, _ = build_mediator()
        with MediatorServer(
            mediator, ServerConfig(workers=1, stream_buffer_rows=4)
        ) as server:
            future = server.submit(QUERY, stream=True)
            rows = []
            for row in future.rows():
                rows.append(row)
                time.sleep(0.001)  # a slow client: the worker must stall
            assert sorted(rows) == sorted(f"p{i}" for i in range(40))
            report = future.report
            assert report.streamed and report.rows == 40
            assert report.stalls >= 1  # backpressure engaged
            assert report.verdict == ADMITTED
        mediator.close()

    def test_client_close_cancels_a_stalled_worker(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=1, stream_buffer_rows=2))
        blocker = park_worker(server, 2)
        blocker.close()  # give up without reading
        # The worker is released and serves the next submission.
        assert len(server.submit(QUERY).result(timeout=10).rows()) == 40
        assert blocker.done() and blocker.report.streamed
        server.close()
        mediator.close()


class TestAdmission:
    def test_full_queue_rejects_synchronously(self):
        mediator, _ = build_mediator()
        server = MediatorServer(
            mediator, ServerConfig(workers=1, max_queue_depth=1, stream_buffer_rows=4)
        )
        blocker = park_worker(server, 4)
        server.submit(QUERY)  # fills the queue
        with pytest.raises(AdmissionError) as excinfo:
            server.submit(QUERY)
        assert excinfo.value.verdict == REJECTED
        assert server.stats()["rejected"] == 1
        list(blocker.rows())
        server.close()
        mediator.close()

    def test_deadline_expiring_in_queue_refuses_with_verdict(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=1, stream_buffer_rows=4))
        blocker = park_worker(server, 4)
        doomed = server.submit(QUERY, timeout=0.05)
        time.sleep(0.15)  # let the deadline lapse while queued
        list(blocker.rows())  # release the worker; it must now refuse `doomed`
        with pytest.raises(AdmissionError) as excinfo:
            doomed.result(timeout=10)
        assert excinfo.value.verdict == QUEUE_TIMEOUT
        assert doomed.report.verdict == QUEUE_TIMEOUT
        assert doomed.report.queue_wait >= 0.05
        assert server.stats()["timed_out"] == 1
        server.close()
        mediator.close()

    def test_priority_classes_are_scheduled_fairly(self):
        # One worker, parked; queue five priority-1 submissions and then one
        # priority-3: stride scheduling serves the high class second, not
        # last, despite it arriving after every low submission.
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=1, stream_buffer_rows=4))
        blocker = park_worker(server, 4)
        low = [server.submit(QUERY, priority=1.0) for _ in range(5)]
        high = server.submit(QUERY, priority=3.0)
        list(blocker.rows())
        high.result(timeout=10)
        for future in low:
            future.result(timeout=10)
        assert high.report.priority == 3.0
        # Served before at least four of the five earlier low submissions
        # (queue_wait orders the single worker's serial pickups).
        beaten = sum(high.report.queue_wait < f.report.queue_wait for f in low)
        assert beaten >= 4
        server.close()
        mediator.close()


class TestClose:
    def test_graceful_drain_completes_queued_work(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=2))
        futures = [server.submit(QUERY) for _ in range(10)]
        server.close(drain=True, timeout=30)
        for future in futures:
            assert future.done()
            assert len(future.result(timeout=0).rows()) == 40
        stats = server.stats()
        assert stats["completed"] == 10 and stats["inflight"] == 0
        mediator.close()

    def test_immediate_close_refuses_queued_work_with_verdict(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=1, stream_buffer_rows=4))
        blocker = park_worker(server, 4)
        queued = [server.submit(QUERY) for _ in range(3)]
        blocker.close()  # release the worker so close() can join it
        server.close(drain=False, timeout=30)
        for future in queued:
            with pytest.raises(AdmissionError) as excinfo:
                future.result(timeout=0)
            assert excinfo.value.verdict == CLOSED
            assert future.report.verdict == CLOSED
        mediator.close()

    def test_submit_after_close_raises_closed(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator)
        server.close()
        with pytest.raises(QueueClosed):
            server.submit(QUERY)
        mediator.close()

    def test_close_joins_every_worker_thread(self):
        mediator, _ = build_mediator()
        server = MediatorServer(mediator, ServerConfig(workers=3))
        server.submit(QUERY).result(timeout=10)
        server.close()
        assert not [
            thread for thread in threading.enumerate() if thread.name.startswith("disco-serve")
        ]
        # The mediator itself stays usable after its server closes.
        assert len(mediator.query(QUERY).rows()) == 40
        mediator.close()


class TestStats:
    def test_counters_reflect_traffic(self):
        mediator, _ = build_mediator()
        with MediatorServer(mediator, ServerConfig(workers=2)) as server:
            futures = [server.submit(QUERY) for _ in range(6)]
            for future in futures:
                future.result(timeout=10)
            stats = server.stats()
            assert stats["submitted"] == 6
            assert stats["completed"] == 6
            assert stats["rejected"] == 0 and stats["timed_out"] == 0
            assert stats["workers"] == 2
            assert stats["queue_wait_total"] >= 0.0
        mediator.close()

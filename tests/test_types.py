"""Tests for the ODMG type system: interfaces, attributes, subtyping."""

import pytest

from repro.datamodel.types import AttributeSpec, InterfaceType, PrimitiveType, TypeSystem
from repro.errors import SchemaError, TypeConflictError


def person_interface(extent_name=None):
    return InterfaceType(
        name="Person",
        attributes=(
            AttributeSpec("name", PrimitiveType.STRING),
            AttributeSpec("salary", PrimitiveType.SHORT),
        ),
        extent_name=extent_name,
    )


class TestPrimitiveType:
    def test_from_name_is_case_insensitive(self):
        assert PrimitiveType.from_name("string") is PrimitiveType.STRING
        assert PrimitiveType.from_name("Short") is PrimitiveType.SHORT

    def test_from_name_unknown_raises(self):
        with pytest.raises(SchemaError):
            PrimitiveType.from_name("Blob")

    def test_accepts_matching_values(self):
        assert PrimitiveType.STRING.accepts("Mary")
        assert PrimitiveType.SHORT.accepts(200)
        assert PrimitiveType.FLOAT.accepts(1.5)
        assert PrimitiveType.FLOAT.accepts(3)
        assert PrimitiveType.BOOLEAN.accepts(True)
        assert PrimitiveType.ANY.accepts(object())

    def test_rejects_mismatched_values(self):
        assert not PrimitiveType.STRING.accepts(42)
        assert not PrimitiveType.SHORT.accepts("x")
        assert not PrimitiveType.SHORT.accepts(True)

    def test_none_is_always_accepted(self):
        assert PrimitiveType.SHORT.accepts(None)


class TestInterfaceType:
    def test_attribute_lookup(self):
        person = person_interface()
        assert person.attribute("name").type is PrimitiveType.STRING
        assert person.attribute_names() == ["name", "salary"]
        assert person.has_attribute("salary")
        assert not person.has_attribute("age")

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            person_interface().attribute("age")

    def test_validate_instance_accepts_good_row(self):
        person_interface().validate_instance({"name": "Mary", "salary": 200})

    def test_validate_instance_rejects_missing_attribute(self):
        with pytest.raises(TypeConflictError):
            person_interface().validate_instance({"name": "Mary"})

    def test_validate_instance_rejects_bad_type(self):
        with pytest.raises(TypeConflictError):
            person_interface().validate_instance({"name": "Mary", "salary": "lots"})


class TestTypeSystem:
    def test_define_and_get(self):
        ts = TypeSystem()
        ts.define(person_interface())
        assert ts.get("Person").name == "Person"
        assert "Person" in ts

    def test_duplicate_definition_raises(self):
        ts = TypeSystem()
        ts.define(person_interface())
        with pytest.raises(SchemaError):
            ts.define(person_interface())

    def test_unknown_supertype_raises(self):
        ts = TypeSystem()
        with pytest.raises(SchemaError):
            ts.define(InterfaceType(name="Student", supertype="Person"))

    def test_subtype_inherits_attributes(self):
        ts = TypeSystem()
        ts.define(person_interface())
        student = ts.define(InterfaceType(name="Student", supertype="Person"))
        assert student.has_attribute("name")
        assert student.has_attribute("salary")

    def test_subtype_can_add_attributes(self):
        ts = TypeSystem()
        ts.define(person_interface())
        student = ts.define(
            InterfaceType(
                name="Student",
                supertype="Person",
                attributes=(AttributeSpec("university", PrimitiveType.STRING),),
            )
        )
        assert set(student.attribute_names()) == {"name", "salary", "university"}

    def test_is_subtype_is_reflexive_and_transitive(self):
        ts = TypeSystem()
        ts.define(person_interface())
        ts.define(InterfaceType(name="Student", supertype="Person"))
        ts.define(InterfaceType(name="PhdStudent", supertype="Student"))
        assert ts.is_subtype("Person", "Person")
        assert ts.is_subtype("Student", "Person")
        assert ts.is_subtype("PhdStudent", "Person")
        assert not ts.is_subtype("Person", "Student")

    def test_subtypes_enumerates_transitive_closure(self):
        ts = TypeSystem()
        ts.define(person_interface())
        ts.define(InterfaceType(name="Student", supertype="Person"))
        ts.define(InterfaceType(name="PhdStudent", supertype="Student"))
        ts.define(InterfaceType(name="Robot"))
        assert set(ts.subtypes("Person")) == {"Person", "Student", "PhdStudent"}
        assert set(ts.subtypes("Person", include_self=False)) == {"Student", "PhdStudent"}

    def test_direct_subtypes(self):
        ts = TypeSystem()
        ts.define(person_interface())
        ts.define(InterfaceType(name="Student", supertype="Person"))
        ts.define(InterfaceType(name="PhdStudent", supertype="Student"))
        assert ts.direct_subtypes("Person") == ["Student"]

    def test_unknown_interface_raises(self):
        with pytest.raises(SchemaError):
            TypeSystem().get("Nope")

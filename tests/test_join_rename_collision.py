"""Regression tests for the multi-extent reverse-rename collision.

When a join is pushed down to one source, the executor used to merge the
local transformation maps of *every* extent the expression references into a
single flat reverse (source -> mediator) rename dictionary.  If two extents
map the *same* source attribute name to *different* mediator attributes --
here both source tables call the column ``nm`` but one extent maps it to
``name`` and the other to ``label`` -- the merged dictionary could keep only
one entry, and the joined rows came back with one of the mediator attributes
missing or mis-valued.

The namespace planner (:meth:`Executor.namespace_plan`) now detects the
collision and injects a per-branch ``rename`` alias into the submitted
expression, so rows cross the submit boundary already uniquely named and the
reverse map is collision-free by construction.  These tests pin the fixed
behaviour (they were a strict xfail while the bug was open).
"""

from repro import Mediator, RelationalWrapper
from repro.algebra.logical import Get, Join, Submit
from repro.datamodel.mapping import LocalTransformationMap
from repro.optimizer.implementation import implement
from repro.sources import RelationalEngine, SimulatedServer, TableSchema


def build_colliding_mediator():
    """One wrapper hosting two tables whose columns collide on ``nm``."""
    engine = RelationalEngine(name="db0")
    engine.create_table(
        "t_emp",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": 1, "nm": "mary"}, {"id": 2, "nm": "sam"}],
    )
    engine.create_table(
        "t_dept",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": 1, "nm": "engineering"}, {"id": 2, "nm": "sales"}],
    )
    server = SimulatedServer(name="h0", store=engine)
    mediator = Mediator(name="collide")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface(
        "Emp", [("id", "Long"), ("name", "String")], extent_name="emps"
    )
    mediator.define_interface(
        "Dept", [("id", "Long"), ("label", "String")], extent_name="depts"
    )
    mediator.add_extent(
        "emp0",
        "Emp",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_emp", "emp0"), ("nm", "name")]),
    )
    mediator.add_extent(
        "dept0",
        "Dept",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_dept", "dept0"), ("nm", "label")]),
    )
    return mediator


def test_pushed_join_disambiguates_colliding_source_attributes():
    mediator = build_colliding_mediator()
    try:
        # A join pushed to the shared source: both sides live at w0, so the
        # whole join(get(emp0), get(dept0), id) crosses the submit boundary.
        plan = implement(
            Submit("r0", Join(Get("emp0"), Get("dept0"), "id"), extent_name="emp0")
        )
        result = mediator.executor.execute(plan)
        rows = sorted(result.data.to_list(), key=lambda row: row["id"])
        # The mediator vocabulary keeps the extents' attributes apart ...
        assert rows[0]["name"] == "mary"
        assert rows[0]["label"] == "engineering"  # both came from "nm"
        assert rows[1]["name"] == "sam"
        assert rows[1]["label"] == "sales"
        # ... because the submitted expression aliased each branch.
        (report,) = result.reports
        assert report.available and report.split_calls == 0
    finally:
        mediator.close()


def test_non_colliding_multi_extent_join_still_renames_both_sides():
    """The fixed (PR 1) happy path: distinct source names rename correctly."""
    engine = RelationalEngine(name="db0")
    engine.create_table(
        "t_emp",
        schema=TableSchema.of(("id", int), ("enm", str)),
        rows=[{"id": 1, "enm": "mary"}],
    )
    engine.create_table(
        "t_dept",
        schema=TableSchema.of(("id", int), ("dnm", str)),
        rows=[{"id": 1, "dnm": "engineering"}],
    )
    server = SimulatedServer(name="h0", store=engine)
    mediator = Mediator(name="ok")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface(
        "Emp", [("id", "Long"), ("name", "String")], extent_name="emps"
    )
    mediator.define_interface(
        "Dept", [("id", "Long"), ("label", "String")], extent_name="depts"
    )
    mediator.add_extent(
        "emp0",
        "Emp",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_emp", "emp0"), ("enm", "name")]),
    )
    mediator.add_extent(
        "dept0",
        "Dept",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_dept", "dept0"), ("dnm", "label")]),
    )
    try:
        plan = implement(
            Submit("r0", Join(Get("emp0"), Get("dept0"), "id"), extent_name="emp0")
        )
        result = mediator.executor.execute(plan)
        (row,) = result.data.to_list()
        assert row["name"] == "mary" and row["label"] == "engineering"
    finally:
        mediator.close()

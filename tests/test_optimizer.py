"""Tests for the optimizer: history, cost model, implementation rules, search, plan cache."""

import pytest

from repro.algebra import physical as phys
from repro.algebra.capabilities import grammar_for
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    BindJoin,
    Distinct,
    Flatten,
    Get,
    Join,
    Project,
    Select,
    Submit,
    Union,
)
from repro.algebra.rewriter import Rewriter
from repro.errors import OptimizationError
from repro.optimizer.cost import CostModel
from repro.optimizer.history import ExecCallHistory, close_signature, exact_signature
from repro.optimizer.implementation import implement, implementation_alternatives
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plancache import PlanCache


def salary_filter(threshold=10):
    return Comparison(">", Path(Var("x"), "salary"), Const(threshold))


def submit(extent="person0", source="r0", expression=None):
    return Submit(source, expression or Get(extent), extent_name=extent)


class TestExecCallHistory:
    def test_default_estimate_is_paper_zero_one(self):
        history = ExecCallHistory()
        estimate = history.estimate("person0", Get("person0"))
        assert estimate.kind == "default"
        assert estimate.time == 0.0
        assert estimate.rows == 1.0

    def test_exact_match_after_recording(self):
        history = ExecCallHistory()
        history.record("person0", Get("person0"), elapsed=0.5, rows=100)
        estimate = history.estimate("person0", Get("person0"))
        assert estimate.kind == "exact"
        assert estimate.time == pytest.approx(0.5)
        assert estimate.rows == pytest.approx(100)

    def test_smoothing_combines_observations(self):
        history = ExecCallHistory(smoothing=0.5)
        history.record("person0", Get("person0"), elapsed=1.0, rows=100)
        history.record("person0", Get("person0"), elapsed=0.0, rows=0)
        estimate = history.estimate("person0", Get("person0"))
        assert 0.0 < estimate.time < 1.0
        assert 0 < estimate.rows < 100

    def test_window_bounds_the_number_of_observations(self):
        history = ExecCallHistory(window=4)
        for index in range(20):
            history.record("person0", Get("person0"), elapsed=float(index), rows=index)
        estimate = history.estimate("person0", Get("person0"))
        # Only the last four observations (16..19) survive.
        assert estimate.time >= 16.0

    def test_close_match_ignores_constants(self):
        """The paper's close match: comparison operators match, constants do not."""
        history = ExecCallHistory()
        expr_10 = Select("x", salary_filter(10), Get("person0"))
        expr_99 = Select("x", salary_filter(99), Get("person0"))
        history.record("person0", expr_10, elapsed=0.2, rows=40)
        estimate = history.estimate("person0", expr_99)
        assert estimate.kind == "close"
        assert estimate.rows == pytest.approx(40)

    def test_different_operator_is_not_a_close_match(self):
        history = ExecCallHistory()
        history.record("person0", Select("x", salary_filter(10), Get("person0")), 0.2, 40)
        other = Select("x", Comparison("<", Path(Var("x"), "salary"), Const(10)), Get("person0"))
        assert history.estimate("person0", other).kind == "default"

    def test_histories_are_per_extent(self):
        history = ExecCallHistory()
        history.record("person0", Get("person0"), 0.2, 40)
        assert history.estimate("person1", Get("person1")).kind == "default"

    def test_signatures(self):
        expr = Select("x", salary_filter(10), Get("person0"))
        assert exact_signature("person0", expr) != exact_signature("person1", expr)
        assert close_signature("person0", expr) == close_signature(
            "person0", Select("x", salary_filter(77), Get("person0"))
        )

    def test_clear_and_recorded_calls(self):
        history = ExecCallHistory()
        history.record("person0", Get("person0"), 0.2, 40)
        assert history.recorded_calls() == 1
        history.clear()
        assert history.recorded_calls() == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExecCallHistory(window=0)
        with pytest.raises(ValueError):
            ExecCallHistory(smoothing=0.0)


class TestImplementationRules:
    def test_each_logical_operator_has_a_physical_algorithm(self):
        predicate = salary_filter()
        plan = Distinct(
            Flatten(
                Union(
                    (
                        Apply("x", Path(Var("x"), "name"), Project(("name",), Select("x", predicate, submit()))),
                        BagLiteral(("Sam",)),
                    )
                )
            )
        )
        physical = implement(plan)
        names = {node.algo_name for node in phys.walk(physical)}
        assert {"mkdistinct", "mkflatten", "mkunion", "mkapply", "mkproj", "filter", "exec", "mkbag"} <= names

    def test_submit_becomes_exec_with_logical_argument(self):
        physical = implement(submit(expression=Project(("name",), Get("person0"))))
        assert isinstance(physical, phys.Exec)
        assert physical.expression.to_text() == "project(name, get(person0))"
        assert physical.extent_name == "person0"

    def test_join_has_two_physical_alternatives(self):
        join = Join(submit("a", "r0"), submit("b", "r1"), "id")
        alternatives = implementation_alternatives(join)
        names = {type(plan).__name__ for plan in alternatives}
        assert names == {"HashJoin", "NestedLoopJoin"}

    def test_bindjoin_is_implemented(self):
        bind = BindJoin(submit("a", "r0"), submit("b", "r1"), "x", "y")
        assert isinstance(implement(bind), phys.MkBindJoin)

    def test_bare_get_outside_submit_is_an_error(self):
        with pytest.raises(OptimizationError):
            implement(Get("person0"))


class TestCostModel:
    def model(self, history=None):
        return CostModel(history=history or ExecCallHistory())

    def test_default_cost_prefers_pushdown(self):
        """The paper: with no cost information, push the maximum work to the source."""
        model = self.model()
        pushed = implement(submit(expression=Project(("name",), Select("x", salary_filter(), Get("person0")))))
        unpushed = implement(
            Project(("name",), Select("x", salary_filter(), submit()))
        )
        assert model.estimate(pushed).total() < model.estimate(unpushed).total()

    def test_recorded_history_feeds_exec_estimates(self):
        history = ExecCallHistory()
        history.record("person0", Get("person0"), elapsed=2.0, rows=10_000)
        model = self.model(history)
        expensive = model.estimate(implement(submit()))
        cheap = model.estimate(implement(submit("person1", "r1")))
        assert expensive.total() > cheap.total()
        assert expensive.rows == pytest.approx(10_000)

    def test_hash_join_estimated_cheaper_than_nested_loop_on_large_inputs(self):
        history = ExecCallHistory()
        history.record("a", Get("a"), elapsed=0.0, rows=1000)
        history.record("b", Get("b"), elapsed=0.0, rows=1000)
        model = self.model(history)
        left = implement(submit("a", "r0"))
        right = implement(submit("b", "r1"))
        hash_cost = model.estimate(phys.HashJoin(left, right, "id")).total()
        loop_cost = model.estimate(phys.NestedLoopJoin(left, right, "id")).total()
        assert hash_cost < loop_cost

    def test_union_cost_adds_children(self):
        model = self.model()
        single = model.estimate(implement(submit()))
        double = model.estimate(implement(Union((submit(), submit("person1", "r1")))))
        assert double.total() == pytest.approx(2 * single.total())

    def test_unknown_operator_raises(self):
        class Weird(phys.PhysicalOp):
            algo_name = "weird"

            def to_text(self):
                return "weird()"

        with pytest.raises(OptimizationError):
            self.model().estimate(Weird())


class TestOptimizerSearch:
    def optimizer(self, history=None):
        capabilities = lambda submit_node: grammar_for(
            {"get", "project", "select", "join", "union", "flatten"}
        )
        history = history or ExecCallHistory()
        return Optimizer(Rewriter(capabilities), CostModel(history=history))

    def paper_plan(self):
        union = Union((submit(), submit("person1", "r1")))
        return Apply(
            "x",
            Path(Var("x"), "name"),
            Project(("name",), Select("x", salary_filter(), union)),
        )

    def test_optimize_chooses_full_pushdown_with_default_costs(self):
        plan = self.optimizer().optimize(self.paper_plan())
        text = plan.logical.to_text()
        assert "submit(r0, project(name, select" in text
        assert "submit(r1, project(name, select" in text
        assert plan.cost.total() > 0

    def test_optimize_reports_search_space_size(self):
        plan = self.optimizer().optimize(self.paper_plan())
        assert plan.logical_alternatives > 1
        assert plan.physical_alternatives >= plan.logical_alternatives

    def test_optimize_greedy_matches_search_on_simple_plans(self):
        optimizer = self.optimizer()
        searched = optimizer.optimize(self.paper_plan())
        greedy = optimizer.optimize_greedy(self.paper_plan())
        assert greedy.logical == searched.logical

    def test_join_algorithm_choice_uses_history(self):
        history = ExecCallHistory()
        history.record("a", Get("a"), elapsed=0.0, rows=2000)
        history.record("b", Get("b"), elapsed=0.0, rows=2000)
        optimizer = self.optimizer(history)
        join = Join(submit("a", "r0"), submit("b", "r1"), "id")
        plan = optimizer.optimize(join)
        assert isinstance(plan.physical, phys.HashJoin)


class TestPlanCache:
    def test_hit_and_miss(self):
        cache = PlanCache()
        assert cache.get("q", schema_version=1) is None
        cache.put("q", schema_version=1, plan="PLAN")
        assert cache.get("q", schema_version=1) == "PLAN"
        assert cache.hits == 1 and cache.misses == 1

    def test_schema_change_invalidates(self):
        """The paper: cached plans must be recomputed when extents change."""
        cache = PlanCache()
        cache.put("q", schema_version=1, plan="PLAN")
        assert cache.get("q", schema_version=2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_capacity_is_bounded(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        cache.put("c", 1, "C")
        assert len(cache) == 2
        assert cache.get("a", 1) is None

    def test_get_refreshes_recency(self):
        """True LRU: a recently *used* entry survives eviction."""
        cache = PlanCache(capacity=2)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        cache.get("a", 1)  # "a" becomes most recently used
        cache.put("c", 1, "C")  # evicts "b", the least recently used
        assert cache.get("a", 1) == "A"
        assert cache.get("b", 1) is None

    def test_put_refreshes_recency_of_existing_keys(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        cache.put("a", 1, "A2")  # refresh, not insert: nothing is evicted
        cache.put("c", 1, "C")
        assert len(cache) == 2
        assert cache.get("a", 1) == "A2"
        assert cache.get("b", 1) is None

    def test_reformatted_query_text_hits_the_cache(self):
        cache = PlanCache()
        cache.put("select x.name from x in person", 1, "PLAN")
        assert cache.get("select  x.name\n  from x in person", 1) == "PLAN"
        assert cache.hits == 1

    def test_whitespace_inside_string_literals_is_significant(self):
        """Regression: literals differing only in inner spaces must not collide."""
        cache = PlanCache()
        cache.put('select x from y where x.name = "Mary  Smith"', 1, "TWO-SPACES")
        assert cache.get('select x from y where x.name = "Mary Smith"', 1) is None
        cache.put('select x from y where x.name = "Mary Smith"', 1, "ONE-SPACE")
        assert cache.get('select  x from y where x.name = "Mary  Smith"', 1) == "TWO-SPACES"
        assert cache.get('select x from y  where x.name = "Mary Smith"', 1) == "ONE-SPACE"

    def test_clear(self):
        cache = PlanCache()
        cache.put("a", 1, "A")
        cache.clear()
        assert len(cache) == 0

"""Tests for the OQL lexer and parser, driven by the paper's own queries."""

import pytest

from repro.algebra.expressions import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    FunctionCall,
    Path,
    StructExpr,
    Subquery,
    Var,
)
from repro.errors import ParseError
from repro.oql.ast import (
    BagLiteralQuery,
    CollectionRef,
    DefineStatement,
    ExprQuery,
    FlattenQuery,
    SelectQuery,
    UnionQuery,
)
from repro.oql.lexer import OqlLexer
from repro.oql.parser import parse_query, parse_statement
from repro.oql.printer import pretty, query_to_oql


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        tokens = OqlLexer("SELECT x FROM x IN person").tokens()
        assert [t.kind for t in tokens[:2]] == ["KEYWORD", "IDENT"]

    def test_bag_capitalised_is_the_bag_keyword(self):
        tokens = OqlLexer('Bag("Sam")').tokens()
        assert tokens[0].is_keyword("bag")

    def test_string_escapes(self):
        tokens = OqlLexer('"a\\"b"').tokens()
        assert tokens[0].text == 'a"b'

    def test_comments_are_skipped(self):
        tokens = OqlLexer("select x // comment\nfrom x in person").tokens()
        assert any(t.is_keyword("from") for t in tokens)

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            OqlLexer('"oops').tokens()

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            OqlLexer("select @").tokens()
        assert excinfo.value.line == 1


class TestParserPaperQueries:
    def test_introduction_query(self):
        query = parse_query(
            "select x.name from x in person where x.salary > 10"
        )
        assert isinstance(query, SelectQuery)
        assert query.bindings[0].variable == "x"
        assert isinstance(query.bindings[0].collection, CollectionRef)
        assert query.bindings[0].collection.name == "person"
        assert isinstance(query.item, Path)
        assert isinstance(query.where, Comparison)

    def test_partial_answer_query(self):
        query = parse_query(
            'union(select y.name from y in person0 where y.salary > 10, Bag("Sam"))'
        )
        assert isinstance(query, UnionQuery)
        assert isinstance(query.parts[0], SelectQuery)
        assert isinstance(query.parts[1], BagLiteralQuery)

    def test_explicit_union_in_from(self):
        query = parse_query(
            "select x.name from x in union(person0, person1) where x.salary > 10"
        )
        assert isinstance(query.bindings[0].collection, UnionQuery)

    def test_metaextent_definition_query(self):
        query = parse_query(
            "flatten(select x.e from x in metaextent where x.interface = Person)"
        )
        assert isinstance(query, FlattenQuery)
        assert isinstance(query.child, SelectQuery)

    def test_recursive_extent_star(self):
        query = parse_query("select x.name from x in person*")
        assert query.bindings[0].collection.recursive

    def test_double_view_query(self):
        query = parse_query(
            "select struct(name: x.name, salary: x.salary + y.salary) "
            "from x in person0 and y in person1 where x.id = y.id"
        )
        assert len(query.bindings) == 2
        assert query.bindings[1].variable == "y"
        assert isinstance(query.item, StructExpr)
        assert isinstance(query.item.fields[1][1], Arithmetic)

    def test_multiple_view_query_with_aggregate_subquery(self):
        query = parse_query(
            "select struct(name: x.name, salary: sum(select z.salary from z in person "
            "where x.id = z.id)) from x in person*"
        )
        aggregate = query.item.fields[1][1]
        assert isinstance(aggregate, FunctionCall)
        assert isinstance(aggregate.args[0], Subquery)

    def test_personnew_view_query(self):
        query = parse_query(
            "bag(select struct(name: x.name, salary: x.salary) from x in person, "
            "select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)"
        )
        assert isinstance(query, BagLiteralQuery)
        assert all(isinstance(item, Subquery) for item in query.items)

    def test_define_statement(self):
        statement = parse_statement(
            "define double as select struct(name: x.name, salary: x.salary + y.salary) "
            "from x in person0 and y in person1 where x.id = y.id"
        )
        assert isinstance(statement, DefineStatement)
        assert statement.name == "double"
        assert isinstance(statement.query, SelectQuery)


class TestParserGeneral:
    def test_distinct(self):
        assert parse_query("select distinct x.name from x in person").distinct

    def test_where_with_and_or_not(self):
        query = parse_query(
            "select x from x in person where x.salary > 10 and not (x.name = \"Sam\" or x.salary < 5)"
        )
        assert isinstance(query.where, BooleanExpr)
        assert query.where.op == "and"

    def test_and_in_where_vs_and_between_bindings(self):
        query = parse_query(
            "select x.name from x in person0 and y in person1 where x.id = y.id and x.salary > 10"
        )
        assert len(query.bindings) == 2
        assert isinstance(query.where, BooleanExpr)

    def test_arithmetic_precedence(self):
        query = parse_query("select x.a + x.b * 2 from x in t")
        assert isinstance(query.item, Arithmetic)
        assert query.item.op == "+"
        assert isinstance(query.item.right, Arithmetic)

    def test_scalar_query(self):
        query = parse_query("sum(select z.salary from z in person)")
        assert isinstance(query, ExprQuery)

    def test_bare_collection_query(self):
        query = parse_query("person")
        assert isinstance(query, CollectionRef)

    def test_nested_select_in_parentheses(self):
        query = parse_query("select y.name from y in (select x from x in person)")
        assert isinstance(query.bindings[0].collection, SelectQuery)

    def test_trailing_semicolon_is_accepted(self):
        parse_query("select x from x in person;")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_query("select x from x in person garbage")

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_query("select x where x.salary > 10")

    def test_literals(self):
        query = parse_query('select struct(a: 1, b: 2.5, c: "s", d: true, e: nil) from x in t')
        values = [value.value for _, value in query.item.fields]
        assert values == [1, 2.5, "s", True, None]


class TestPrinter:
    def test_round_trip_through_text(self):
        text = "select x.name from x in person where x.salary > 10"
        query = parse_query(text)
        assert parse_query(query_to_oql(query)) == query

    def test_round_trip_multi_binding(self):
        text = (
            "select struct(name: x.name, salary: x.salary + y.salary) "
            "from x in person0, y in person1 where x.id = y.id"
        )
        query = parse_query(text)
        assert parse_query(query_to_oql(query)) == query

    def test_pretty_layout_has_clause_lines(self):
        query = parse_query("select x.name from x in person where x.salary > 10")
        lines = pretty(query).splitlines()
        assert lines[0].startswith("select")
        assert lines[1].startswith("from")
        assert lines[2].startswith("where")

    def test_pretty_union(self):
        query = parse_query("union(select x from x in a, select y from y in b)")
        assert pretty(query).startswith("union(")


class TestLimitClause:
    def test_limit_is_parsed_onto_the_select(self):
        query = parse_query("select x.name from x in person limit 10")
        assert isinstance(query, SelectQuery)
        assert query.limit == 10

    def test_no_limit_means_none(self):
        assert parse_query("select x from x in person").limit is None

    def test_limit_round_trips_through_text(self):
        text = "select x.name from x in person where x.salary > 10 limit 5"
        query = parse_query(text)
        assert query.to_oql() == text
        assert parse_query(query_to_oql(query)) == query

    def test_limit_zero_round_trips(self):
        query = parse_query("select x from x in person limit 0")
        assert query.limit == 0
        assert parse_query(query_to_oql(query)) == query

    def test_limit_with_distinct_and_where(self):
        query = parse_query(
            "select distinct x.name from x in person where x.salary > 10 limit 3"
        )
        assert query.distinct and query.limit == 3 and query.where is not None

    def test_limit_inside_subquery_collection(self):
        query = parse_query("select y from y in (select x from x in person limit 2)")
        inner = query.bindings[0].collection
        assert isinstance(inner, SelectQuery) and inner.limit == 2

    def test_limit_requires_an_integer(self):
        with pytest.raises(ParseError):
            parse_query("select x from x in person limit 1.5")
        with pytest.raises(ParseError):
            parse_query("select x from x in person limit -3")
        with pytest.raises(ParseError):
            parse_query("select x from x in person limit many")

    def test_pretty_prints_the_limit_line(self):
        query = parse_query("select x.name from x in person where x.salary > 10 limit 7")
        assert pretty(query).splitlines()[-1].strip() == "limit 7"

"""Tests for name binding (extents, views, person*, metaextent) and translation."""

import pytest

from repro.algebra.logical import Apply, BagLiteral, Project, Select, Submit, Union
from repro.errors import NameResolutionError, QueryExecutionError, ViewDefinitionError
from repro.oql.ast import BoundExtent, ExprQuery, MetaExtentCollection, SelectQuery, UnionQuery
from repro.oql.binder import Binder
from repro.oql.parser import parse_query
from repro.oql.translator import Translator
from tests.conftest import build_paper_mediator


@pytest.fixture
def registry():
    mediator, _ = build_paper_mediator()
    mediator.define_interface("Student", supertype="Person", extent_name="student")
    mediator.add_extent("student0", "Student", "w0", "r0", source_collection="person0")
    mediator.define_view("rich", "select x from x in person where x.salary > 100")
    return mediator.registry


@pytest.fixture
def binder(registry):
    return Binder(registry)


class TestBinder:
    def test_explicit_extent_binds_to_single_source(self, binder):
        bound = binder.bind(parse_query("select x.name from x in person0"))
        collection = bound.bindings[0].collection
        assert isinstance(collection, BoundExtent)
        assert collection.meta.name == "person0"

    def test_implicit_type_extent_binds_to_union_of_extents(self, binder):
        bound = binder.bind(parse_query("select x.name from x in person"))
        collection = bound.bindings[0].collection
        assert isinstance(collection, UnionQuery)
        names = {part.meta.name for part in collection.parts}
        assert names == {"person0", "person1"}

    def test_recursive_extent_includes_subtype_extents(self, binder):
        bound = binder.bind(parse_query("select x.name from x in person*"))
        collection = bound.bindings[0].collection
        names = {part.meta.name for part in collection.parts}
        assert names == {"person0", "person1", "student0"}

    def test_view_expands_to_its_query(self, binder):
        bound = binder.bind(parse_query("select y.name from y in rich"))
        collection = bound.bindings[0].collection
        assert isinstance(collection, SelectQuery)

    def test_metaextent_collection(self, binder):
        bound = binder.bind(parse_query("select m.name from m in metaextent"))
        assert isinstance(bound.bindings[0].collection, MetaExtentCollection)

    def test_unknown_collection_raises(self, binder):
        with pytest.raises(NameResolutionError):
            binder.bind(parse_query("select x from x in nowhere"))

    def test_cyclic_views_are_rejected(self, registry):
        registry.define_view_text("a_view", "select x from x in b_view")
        registry.define_view_text("b_view", "select x from x in a_view")
        binder = Binder(registry)
        with pytest.raises(ViewDefinitionError):
            binder.bind(parse_query("select x from x in a_view"))

    def test_view_referencing_view_is_allowed(self, registry):
        registry.define_view_text("richer", "select y from y in rich where y.salary > 150")
        binder = Binder(registry)
        bound = binder.bind(parse_query("select z.name from z in richer"))
        assert isinstance(bound.bindings[0].collection, SelectQuery)

    def test_subquery_expressions_are_bound(self, binder):
        bound = binder.bind(
            parse_query(
                "select struct(name: x.name, total: sum(select z.salary from z in person "
                "where x.id = z.id)) from x in person"
            )
        )
        subquery = bound.item.fields[1][1].args[0].query
        assert isinstance(subquery.bindings[0].collection, UnionQuery)

    def test_type_with_no_extents_binds_to_empty_bag(self, registry):
        registry.define_interface = None  # not used; keep registry intact
        mediator, _ = build_paper_mediator()
        mediator.define_interface("Sensor", [("id", "Long")], extent_name="sensor")
        binder = Binder(mediator.registry)
        bound = binder.bind(parse_query("select s from s in sensor"))
        from repro.oql.ast import BagLiteralQuery

        assert isinstance(bound.bindings[0].collection, BagLiteralQuery)


class TestTranslator:
    def translate(self, registry, text):
        binder = Binder(registry)
        translator = Translator(metaextent_rows=registry.metaextent_rows)
        return translator.translate(binder.bind(parse_query(text)))

    def test_extent_reference_becomes_submit_of_get(self, registry):
        plan = self.translate(registry, "select x from x in person0")
        assert isinstance(plan, Submit)
        assert plan.to_text() == "submit(r0, get(person0))"

    def test_implicit_extent_becomes_union_of_submits(self, registry):
        plan = self.translate(registry, "select x from x in person")
        assert isinstance(plan, Union)
        assert {child.source for child in plan.children()} == {"r0", "r1"}

    def test_where_clause_becomes_select_operator(self, registry):
        plan = self.translate(registry, "select x from x in person0 where x.salary > 10")
        assert isinstance(plan, Select)

    def test_path_item_becomes_apply_over_project(self, registry):
        plan = self.translate(registry, "select x.name from x in person0")
        assert isinstance(plan, Apply)
        assert isinstance(plan.child, Project)
        assert plan.child.attributes == ("name",)

    def test_matching_struct_item_is_pure_projection(self, registry):
        plan = self.translate(
            registry, "select struct(name: x.name, salary: x.salary) from x in person0"
        )
        assert isinstance(plan, Project)
        assert plan.attributes == ("name", "salary")

    def test_renaming_struct_item_requires_apply(self, registry):
        plan = self.translate(registry, "select struct(n: x.name) from x in person0")
        assert isinstance(plan, Apply)

    def test_multi_binding_query_uses_bindjoin(self, registry):
        plan = self.translate(
            registry,
            "select struct(name: x.name, salary: x.salary + y.salary) "
            "from x in person0 and y in person1 where x.id = y.id",
        )
        assert "bindjoin" in plan.operators_used()

    def test_metaextent_rows_are_inlined(self, registry):
        plan = self.translate(registry, "select m.name from m in metaextent")
        literals = [node for node in [plan] if isinstance(node, BagLiteral)]
        # the metaextent collection appears somewhere in the tree
        assert "bag" in plan.operators_used() or literals

    def test_scalar_query_is_not_translated(self, registry):
        binder = Binder(registry)
        translator = Translator(metaextent_rows=registry.metaextent_rows)
        bound = binder.bind(parse_query("sum(select z.salary from z in person)"))
        assert isinstance(bound, ExprQuery)
        with pytest.raises(QueryExecutionError):
            translator.translate(bound)

    def test_bag_literal_query_with_constants(self, registry):
        binder = Binder(registry)
        translator = Translator()
        plan = translator.translate(binder.bind(parse_query('bag("Mary", "Sam")')))
        assert isinstance(plan, BagLiteral)
        assert set(plan.values) == {"Mary", "Sam"}

    def test_distinct_wraps_plan(self, registry):
        plan = self.translate(registry, "select distinct x.name from x in person0")
        assert plan.op_name == "distinct"

"""Tests for the run-time system: executor, maps, parallelism, partial evaluation."""

import time

import pytest

from repro import Bag, LocalTransformationMap, Mediator, RelationalWrapper, Struct
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import Get, Join, Project, Select, Submit, Union
from repro.algebra.physical import Exec, Field, MkUnion
from repro.optimizer.implementation import implement
from repro.runtime.operators import (
    Env,
    bind_join_rows,
    distinct_rows,
    element_environment,
    filter_rows,
    flatten_rows,
    hash_join_rows,
    limit_rows,
    nested_loop_join_rows,
    project_rows,
)
from repro.runtime.partial_eval import UNAVAILABLE, PartialAnswerBuilder
from repro.sources import RelationalEngine, SimulatedServer
from repro.sources.network import NetworkProfile
from tests.conftest import build_paper_mediator


def salary_filter(var="x", threshold=10):
    return Comparison(">", Path(Var(var), "salary"), Const(threshold))


class TestRowOperators:
    """The operators are lazy generators; tests materialize with list()."""

    ROWS = [
        Struct({"id": 1, "name": "Mary", "salary": 200}),
        Struct({"id": 2, "name": "Sam", "salary": 50}),
    ]

    def test_project_rows_keeps_records(self):
        projected = list(project_rows(self.ROWS, ("name",)))
        assert projected == [Struct({"name": "Mary"}), Struct({"name": "Sam"})]

    def test_filter_rows_binds_the_variable(self):
        assert list(filter_rows(self.ROWS, "x", salary_filter(threshold=100))) == [self.ROWS[0]]

    def test_filter_rows_with_env_elements(self):
        envs = [Env({"x": self.ROWS[0], "y": self.ROWS[1]})]
        predicate = Comparison("=", Path(Var("x"), "id"), Const(1))
        assert list(filter_rows(envs, "_env", predicate)) == envs

    def test_element_environment_merges_base_env(self):
        env = element_environment(self.ROWS[0], "x", {"outer": 42})
        assert env["outer"] == 42 and env["x"] == self.ROWS[0]

    def test_operators_are_lazy_generators(self):
        """No input element is consumed before the output is iterated."""
        consumed = []

        def source():
            for row in self.ROWS:
                consumed.append(row)
                yield row

        pipeline = project_rows(
            filter_rows(source(), "x", salary_filter(threshold=0)), ("name",)
        )
        assert consumed == []
        first = next(iter(pipeline))
        assert first == Struct({"name": "Mary"})
        assert len(consumed) == 1  # only one row pulled so far

    def test_hash_and_nested_loop_joins_agree(self):
        left = [{"id": 1, "a": "x"}, {"id": 2, "a": "y"}]
        right = [{"id": 1, "b": "z"}]
        assert list(hash_join_rows(left, right, "id")) == list(
            nested_loop_join_rows(left, right, "id")
        )

    def test_hash_join_streams_the_probe_side(self):
        """Only the build (right) side is materialized."""
        probed = []

        def probe():
            for row in [{"id": 1}, {"id": 1}]:
                probed.append(row)
                yield row

        joined = hash_join_rows(probe(), [{"id": 1, "b": "z"}], "id")
        assert probed == []
        next(joined)
        assert len(probed) == 1

    def test_bind_join_uses_equi_condition(self):
        left = [Struct({"id": 1, "name": "Mary"})]
        right = [Struct({"id": 1, "name": "Sam"}), Struct({"id": 2, "name": "Ana"})]
        condition = Comparison("=", Path(Var("x"), "id"), Path(Var("y"), "id"))
        result = list(bind_join_rows(left, right, "x", "y", condition))
        assert len(result) == 1
        assert result[0]["y"]["name"] == "Sam"

    def test_bind_join_without_condition_is_cross_product(self):
        result = list(bind_join_rows([1, 2], ["a", "b"], "x", "y", None))
        assert len(result) == 4

    def test_flatten_and_distinct(self):
        assert list(flatten_rows([[1, 2], 3, Bag([4])])) == [1, 2, 3, 4]
        assert list(distinct_rows([1, 1, 2])) == [1, 2]

    def test_distinct_keeps_no_linear_list_for_hashable_rows(self):
        """Regression: hashable rows must live once (in the set), never also
        in the unhashable-fallback list -- a streaming ``distinct`` over a
        large extent was holding every emitted row live twice."""
        gen = distinct_rows(iter(range(1000)))
        for _ in range(500):
            next(gen)
        internals = gen.gi_frame.f_locals
        assert len(internals["seen_hashable"]) == 500
        assert internals["emitted_unhashable"] == []
        gen.close()
        # Unhashable elements still deduplicate through the fallback list,
        # and only they are retained there.
        mixed = iter([1, [1], 1, [1], 2])
        gen = distinct_rows(mixed)
        assert [next(gen) for _ in range(3)] == [1, [1], 2]
        assert gen.gi_frame.f_locals["emitted_unhashable"] == [[1]]
        gen.close()

    def test_limit_rows_truncates_and_closes_upstream(self):
        closed = []

        def source():
            try:
                for value in range(1000):
                    yield value
            finally:
                closed.append(True)

        assert list(limit_rows(source(), 3)) == [0, 1, 2]
        assert closed == [True]
        assert list(limit_rows(source(), 0)) == []
        assert list(limit_rows([1, 2], 10)) == [1, 2]


class TestExecutor:
    def test_map_is_applied_in_both_directions(self):
        """Queries go out in source vocabulary, rows come back in mediator vocabulary."""
        mediator, _ = build_paper_mediator()
        mediator.define_interface(
            "PersonPrime", [("n", "String"), ("s", "Short")], extent_name="personprime"
        )
        mapping = LocalTransformationMap.from_pairs(
            [("person0", "personprime0"), ("name", "n"), ("salary", "s")]
        )
        mediator.add_extent("personprime0", "PersonPrime", "w0", "r0", map=mapping)
        meta = mediator.registry.extent("personprime0")
        expression = Project(("n",), Select("x", Comparison(">", Path(Var("x"), "s"), Const(10)), Get("personprime0")))
        translated = mediator.executor.to_source_namespace(expression, meta)
        assert translated.to_text() == (
            "project(name, select(x: x.salary > 10, get(person0)))"
        )

    def build_hr_mediator(self):
        """One wrapper exposing two tables; two extents with *different* maps."""
        engine = RelationalEngine(name="hr")
        engine.create_table("employees", rows=[{"ename": "Mary", "edept": "cs"}])
        engine.create_table("departments", rows=[{"ddept": "cs", "dbudget": 100}])
        server = SimulatedServer(name="hr-host", store=engine)
        mediator = Mediator(name="hr-mediator")
        mediator.register_wrapper("w0", RelationalWrapper("w0", server))
        mediator.create_repository("r0")
        mediator.define_interface(
            "Emp", [("name", "String"), ("dept", "String")], extent_name="emp"
        )
        mediator.define_interface(
            "Dept", [("dept", "String"), ("budget", "Long")], extent_name="dept"
        )
        mediator.add_extent(
            "emp0", "Emp", "w0", "r0",
            map=LocalTransformationMap.from_pairs(
                [("employees", "emp0"), ("ename", "name"), ("edept", "dept")]
            ),
        )
        mediator.add_extent(
            "dept0", "Dept", "w0", "r0",
            map=LocalTransformationMap.from_pairs(
                [("departments", "dept0"), ("ddept", "dept"), ("dbudget", "budget")]
            ),
        )
        return mediator

    def test_pushed_down_join_renames_each_side_with_its_own_map(self):
        """Regression: a join's sides must use their own extents' rename maps."""
        mediator = self.build_hr_mediator()
        meta = mediator.registry.extent("emp0")
        expression = Join(Get("emp0"), Get("dept0"), ("dept", "dept"))
        translated = mediator.executor.to_source_namespace(expression, meta)
        assert translated.to_text() == (
            "join(get(employees), get(departments), edept=ddept)"
        )

    def test_pushed_down_join_rows_come_back_in_mediator_vocabulary(self):
        mediator = self.build_hr_mediator()
        exec_node = Exec(
            Field("r0"), Join(Get("emp0"), Get("dept0"), ("dept", "dept")), extent_name="emp0"
        )
        result = mediator.executor.execute(exec_node)
        assert not result.is_partial
        (row,) = result.data.to_list()
        assert row["name"] == "Mary"
        assert row["dept"] == "cs"
        assert row["budget"] == 100

    def test_exec_reports_and_history_are_recorded(self):
        mediator, _ = build_paper_mediator()
        result = mediator.query("select x.name from x in person")
        assert len(result.reports) == 2
        assert all(report.available for report in result.reports)
        assert mediator.history.recorded_calls() == 2

    def test_exec_calls_run_in_parallel(self):
        """Two slow sources should not take twice the single-source latency."""
        mediator, servers = build_paper_mediator()
        for server in servers:
            server.network = NetworkProfile(base_latency=0.15)
            server.real_sleep = True
        started = time.monotonic()
        mediator.query("select x.name from x in person")
        elapsed = time.monotonic() - started
        assert elapsed < 0.28  # sequential would be >= 0.30

    def test_timeout_declares_slow_sources_unavailable(self):
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=0.5)
        servers[0].real_sleep = True
        result = mediator.query(
            "select x.name from x in person where x.salary > 10", timeout=0.1
        )
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)

    def test_type_check_runs_once_per_extent(self):
        mediator, servers = build_paper_mediator()
        mediator.query("select x.name from x in person0")
        requests_after_first = servers[0].statistics.requests
        mediator.query("select x.salary from x in person0")
        # one exec per query; the type check does not add extra server calls
        assert servers[0].statistics.requests == requests_after_first + 1


class TestPartialAnswerBuilder:
    def physical_plan(self):
        return MkUnion(
            (
                Exec(Field("r0"), Project(("name",), Get("person0")), extent_name="person0"),
                Exec(Field("r1"), Project(("name",), Get("person1")), extent_name="person1"),
            )
        )

    def test_to_logical_replaces_available_exec_with_data(self):
        builder = PartialAnswerBuilder()
        plan = self.physical_plan()
        execs = plan.inputs
        outcomes = {id(execs[0]): UNAVAILABLE, id(execs[1]): [Struct({"name": "Sam"})]}
        logical = builder.to_logical(plan, outcomes)
        assert "submit(r0" in logical.to_text()
        assert "Bag" in logical.to_text()

    def test_build_collapses_available_branches(self):
        builder = PartialAnswerBuilder()
        plan = self.physical_plan()
        execs = plan.inputs
        outcomes = {id(execs[0]): UNAVAILABLE, id(execs[1]): [Struct({"name": "Sam"})]}
        partial = builder.build(plan, outcomes)
        text = builder.to_oql(partial)
        assert text == 'union(select x0.name from x0 in person0, Bag(struct(name: "Sam")))'

    def test_fully_available_plan_collapses_to_data(self):
        builder = PartialAnswerBuilder()
        plan = self.physical_plan()
        execs = plan.inputs
        outcomes = {
            id(execs[0]): [Struct({"name": "Mary"})],
            id(execs[1]): [Struct({"name": "Sam"})],
        }
        partial = builder.build(plan, outcomes)
        assert not partial.contains_submit()

    def test_evaluate_logical_refuses_submit(self):
        builder = PartialAnswerBuilder()
        with pytest.raises(Exception):
            builder.evaluate_logical(Submit("r0", Get("person0")))

    def test_round_trip_physical_to_logical_for_every_operator(self):
        builder = PartialAnswerBuilder()
        logical = Union(
            (
                Project(("name",), Select("x", salary_filter(), Submit("r0", Get("person0"), extent_name="person0"))),
                Submit("r1", Get("person1"), extent_name="person1"),
            )
        )
        physical = implement(logical)
        back = builder.to_logical(physical, {})
        assert back == logical

"""E3: DBA effort to integrate the k-th data source (paper Sections 1.2 and 2).

DISCO claim: adding a data source of an existing type is *one* extent
declaration and changes no query.  The unified-global-schema baseline
(Pegasus/UniSQL-style) must reconcile the new source against the schema built
so far, so its per-source effort grows with the number of sources already
integrated.  The benchmark measures both statements-touched counts and the
wall-clock time of registering sources with a live mediator.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro import RelationalWrapper
from repro.baselines import UnifiedSchemaIntegrator
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.sources.workload import generate_person_rows

TOTAL_SOURCES = 30


def test_e3_statements_touched_disco_vs_unified_schema(benchmark):
    """Statements touched per newly integrated source, DISCO vs unified schema."""

    def run():
        mediator = build_person_federation(sources=1, rows_per_source=5)
        disco_costs = []
        before = mediator.registry.statement_count()
        for index in range(1, TOTAL_SOURCES):
            engine = RelationalEngine(f"extra{index}")
            engine.create_table(f"person{index}x", rows=generate_person_rows(5, seed=index))
            server = SimulatedServer(f"host{index}x", engine)
            mediator.register_wrapper(f"wx{index}", RelationalWrapper(f"wx{index}", server))
            mediator.create_repository(f"rx{index}", host=server.name)
            mediator.add_extent(f"person{index}x", "Person", f"wx{index}", f"rx{index}")
            after = mediator.registry.statement_count()
            disco_costs.append(after - before)
            before = after

        unified = UnifiedSchemaIntegrator()
        unified_costs = [
            unified.integrate_source(f"s{index}", "Person", ("id", "name", "salary")).statements_touched
            for index in range(1, TOTAL_SOURCES)
        ]
        return disco_costs, unified_costs

    disco_costs, unified_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    # DISCO cost per same-type source is constant (wrapper + repository + extent).
    assert len(set(disco_costs)) == 1
    # The unified-schema baseline grows with the number of integrated sources.
    assert unified_costs[-1] > unified_costs[0]
    assert unified_costs[-1] > disco_costs[-1]
    benchmark.extra_info.update(
        {
            "disco_statements_per_source": disco_costs[0],
            "unified_statements_first": unified_costs[0],
            "unified_statements_last": unified_costs[-1],
        }
    )


@pytest.mark.parametrize("existing_sources", [1, 8, 16])
def test_e3_time_to_add_a_source(benchmark, existing_sources):
    """Wall-clock time of one extent declaration against a live mediator."""
    mediator = build_person_federation(sources=existing_sources, rows_per_source=5)
    engine = RelationalEngine("newdb")
    engine.create_table("person_new", rows=generate_person_rows(5, seed=99))
    server = SimulatedServer("new-host", engine)
    mediator.register_wrapper("w_new", RelationalWrapper("w_new", server))
    mediator.create_repository("r_new", host="new-host")

    def run():
        # Declare the extent, then retract it so every round starts from the
        # same schema; the declaration dominates the measurement.
        mediator.add_extent(
            "person_new", "Person", "w_new", "r_new", source_collection="person_new"
        )
        mediator.drop_extent("person_new")

    benchmark(run)
    benchmark.extra_info["existing_sources"] = existing_sources


def test_e3_queries_survive_source_addition(benchmark):
    """The same query text keeps working (and sees more data) as sources join."""
    mediator = build_person_federation(sources=2, rows_per_source=10)
    query = "select x.name from x in person"

    def run():
        return mediator.query(query)

    before = len(mediator.query(query).rows())
    engine = RelationalEngine("extra")
    engine.create_table("person_extra", rows=generate_person_rows(10, seed=123, id_offset=900))
    server = SimulatedServer("extra-host", engine)
    mediator.register_wrapper("w_extra", RelationalWrapper("w_extra", server))
    mediator.create_repository("r_extra", host="extra-host")
    mediator.add_extent("person_extra", "Person", "w_extra", "r_extra")
    result = benchmark(run)
    assert len(result.rows()) == before + 10

"""Shared builders for the benchmark harness.

Every benchmark federates N synthetic Person or water-quality sources under
one mediator; the helpers here keep source counts and row counts small enough
that the whole suite runs in seconds while preserving the *shapes* the paper
claims (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `pytest benchmarks/` to run from a clean checkout without installation.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import Mediator, RelationalWrapper  # noqa: E402
from repro.algebra.capabilities import CapabilitySet  # noqa: E402
from repro.baselines import GetOnlyWrapper  # noqa: E402
from repro.sources.workload import (  # noqa: E402
    WorkloadConfig,
    build_person_sources,
    build_water_quality_sources,
)

PERSON_QUERY = "select x.name from x in person where x.salary > 250"


def build_person_federation(
    sources: int,
    rows_per_source: int = 50,
    failure_probability: float = 0.0,
    capabilities: CapabilitySet | None = None,
    get_only: bool = False,
    base_latency: float = 0.0,
    seed: int = 7,
    answer_cache=None,
) -> Mediator:
    """A mediator federating ``sources`` Person databases."""
    servers = build_person_sources(
        WorkloadConfig(
            sources=sources,
            rows_per_source=rows_per_source,
            failure_probability=failure_probability,
            base_latency=base_latency,
            seed=seed,
        )
    )
    mediator = Mediator(name=f"bench-{sources}", answer_cache=answer_cache)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    for index, server in enumerate(servers):
        wrapper = RelationalWrapper(f"w{index}", server, capabilities=capabilities)
        if get_only:
            wrapper = GetOnlyWrapper(wrapper)
        mediator.register_wrapper(f"w{index}", wrapper)
        mediator.create_repository(f"r{index}", host=server.name)
        mediator.add_extent(f"person{index}", "Person", f"w{index}", f"r{index}")
    return mediator


def build_water_federation(sources: int, rows_per_source: int = 50, seed: int = 7) -> Mediator:
    """A mediator federating ``sources`` water-quality stations."""
    servers = build_water_quality_sources(
        WorkloadConfig(sources=sources, rows_per_source=rows_per_source, seed=seed)
    )
    mediator = Mediator(name=f"water-{sources}")
    mediator.define_interface(
        "Measurement",
        [("site", "String"), ("day", "Long"), ("parameter", "String"), ("value", "Float")],
        extent_name="measurements",
    )
    for index, server in enumerate(servers):
        mediator.register_wrapper(f"w{index}", RelationalWrapper(f"w{index}", server))
        mediator.create_repository(f"r{index}", host=server.name)
        mediator.add_extent(f"measurements{index}", "Measurement", f"w{index}", f"r{index}")
    return mediator

"""E15: the ``groupby`` capability terminal -- summarization pushdown across submit.

A grouped aggregate over a 100k-row remote extent.  When the wrapper declares
the ``groupby`` terminal the rewriter folds the grouping into the submitted
expression and the source aggregates server-side: one row per group -- under
1% of the extent -- crosses the (simulated) wire.  The no-capability baseline
ships every row and aggregates at the mediator (the same answer, via the
degradation/compensation path the partial-aggregation machinery provides).
Both engines benefit; the streaming path additionally refuses to emit a
grouped result computed over a known-incomplete input.
"""

from __future__ import annotations

from benchmarks.conftest import SRC  # noqa: F401  (ensures src/ is importable)
from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import PUSHABLE_OPERATORS, CapabilitySet
from repro.sources import RelationalEngine, SimulatedServer

ROWS = 100_000
GROUPS = 997
QUERY = (
    "select struct(s: x.salary, n: count(x), hi: max(x.id)) from x in big "
    "group by s: x.salary"
)

#: everything the full capability set has except the groupby terminal.
NO_GROUPBY_CAPS = CapabilitySet.of(
    *(op for op in PUSHABLE_OPERATORS if op != "groupby")
)


def build_big_mediator(capabilities: CapabilitySet | None) -> tuple[Mediator, SimulatedServer]:
    engine = RelationalEngine(name="bigdb")
    engine.create_table(
        "big0",
        rows=[{"id": i, "name": f"p{i}", "salary": i % GROUPS} for i in range(ROWS)],
    )
    server = SimulatedServer(name="bighost", store=engine)
    mediator = Mediator(name="e15")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server, capabilities=capabilities))
    mediator.create_repository("r0", host=server.name)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="big",
    )
    mediator.add_extent("big0", "Person", "w0", "r0")
    return mediator, server


def _shipped_rows(capabilities: CapabilitySet | None, run) -> tuple[int, int]:
    mediator, server = build_big_mediator(capabilities)
    try:
        rows = run(mediator)
        return len(rows), server.statistics.rows_returned
    finally:
        mediator.close()


def test_e15_aggregation_pushdown_ships_under_one_percent(benchmark):
    """Capability wrapper ships <1% of the rows the baseline ships (barrier)."""

    def barrier(mediator):
        return mediator.query(QUERY).rows()

    grouped_count, grouped_shipped = _shipped_rows(None, barrier)
    baseline_count, baseline_shipped = _shipped_rows(NO_GROUPBY_CAPS, barrier)
    assert grouped_count == baseline_count == GROUPS
    assert baseline_shipped >= ROWS
    assert grouped_shipped < 0.01 * baseline_shipped  # the headline claim
    assert grouped_shipped == GROUPS

    # Benchmark the capability path end to end (plan cache warm after run 1).
    mediator, server = build_big_mediator(None)
    try:
        rows = benchmark(lambda: mediator.query(QUERY).rows())
        assert len(rows) == GROUPS
    finally:
        mediator.close()
    benchmark.extra_info["rows_in_extent"] = ROWS
    benchmark.extra_info["rows_shipped_with_capability"] = grouped_shipped
    benchmark.extra_info["rows_shipped_baseline"] = baseline_shipped


def test_e15_streaming_engine_pushes_the_same_grouping(benchmark):
    """The streaming engine ships the same one-row-per-group count."""

    def streamed(mediator):
        return list(mediator.query_stream(QUERY).iter_rows())

    grouped_count, grouped_shipped = _shipped_rows(None, streamed)
    assert grouped_count == GROUPS
    assert grouped_shipped == GROUPS

    mediator, _server = build_big_mediator(None)
    try:
        rows = benchmark(lambda: list(mediator.query_stream(QUERY).iter_rows()))
        assert len(rows) == GROUPS
    finally:
        mediator.close()


def test_e15_no_capability_baseline_still_answers(benchmark):
    """Without the terminal the mediator compensates: same groups, every row shipped."""
    mediator, server = build_big_mediator(NO_GROUPBY_CAPS)
    try:
        rows = benchmark(lambda: mediator.query(QUERY).rows())
        assert len(rows) == GROUPS
        assert server.statistics.rows_returned >= ROWS
    finally:
        mediator.close()

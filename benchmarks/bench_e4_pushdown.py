"""E4: capability-based push-down through ``submit`` (paper Section 3.2).

Compares the same selective query against wrappers of increasing capability:
{get}, {get, project}, {get, project, select} and the full operator set.  The
more the wrapper understands, the less data crosses the wrapper boundary and
the less work the mediator does.  Also benchmarks the same-source join
push-down of the paper's employee/manager example.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.sources.workload import generate_person_rows

SELECTIVE_QUERY = "select x.name from x in person where x.salary > 480"

CAPABILITY_SETS = {
    "get-only": CapabilitySet.get_only(),
    "get+project": CapabilitySet.of("get", "project"),
    "get+project+select": CapabilitySet.of("get", "project", "select"),
    "full": CapabilitySet.full(),
}


@pytest.mark.parametrize("label", list(CAPABILITY_SETS))
def test_e4_pushdown_by_wrapper_capability(benchmark, label):
    """Query latency and rows shipped, by wrapper capability set."""
    mediator = build_person_federation(
        sources=4,
        rows_per_source=400,
        capabilities=CAPABILITY_SETS[label],
        base_latency=0.0,
    )

    def run():
        return mediator.query(SELECTIVE_QUERY)

    result = benchmark(run)
    assert not result.is_partial
    rows_shipped = sum(report.rows for report in result.reports)
    benchmark.extra_info.update(
        {
            "capabilities": label,
            "rows_shipped_to_mediator": rows_shipped,
            "answer_rows": len(result.rows()),
        }
    )
    if label == "full":
        # With select pushed down, only matching rows cross the boundary.
        assert rows_shipped == len(result.rows())
    if label == "get-only":
        assert rows_shipped == 4 * 400


def test_e4_rows_shipped_shrink_with_capability():
    """Sanity check of the headline shape without the benchmark timer."""
    shipped = {}
    for label, capabilities in CAPABILITY_SETS.items():
        mediator = build_person_federation(
            sources=2, rows_per_source=200, capabilities=capabilities
        )
        result = mediator.query(SELECTIVE_QUERY)
        shipped[label] = sum(report.rows for report in result.reports)
    assert shipped["full"] <= shipped["get+project+select"] <= shipped["get-only"]
    assert shipped["full"] < shipped["get-only"]


def _two_table_mediator(capabilities: CapabilitySet) -> Mediator:
    engine = RelationalEngine("hr")
    engine.create_table("employee0", rows=generate_person_rows(300, seed=1))
    engine.create_table(
        "manager0",
        rows=[{"id": row["id"], "dept": f"d{row['id'] % 10}"} for row in generate_person_rows(300, seed=1)],
    )
    server = SimulatedServer("hr-host", engine)
    mediator = Mediator(name="hr")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server, capabilities=capabilities))
    mediator.create_repository("r0", host="hr-host")
    mediator.define_interface(
        "Employee", [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="employee",
    )
    mediator.define_interface("Manager", [("id", "Long"), ("dept", "String")], extent_name="manager")
    mediator.add_extent("employee0", "Employee", "w0", "r0")
    mediator.add_extent("manager0", "Manager", "w0", "r0")
    return mediator


@pytest.mark.parametrize("join_capability", ["with-join", "without-join"])
def test_e4_join_pushdown_same_source(benchmark, join_capability):
    """The paper's employee/manager join, pushed to the source when allowed."""
    capabilities = (
        CapabilitySet.full()
        if join_capability == "with-join"
        else CapabilitySet.of("get", "project", "select")
    )
    mediator = _two_table_mediator(capabilities)
    query = (
        "select struct(name: e.name, dept: m.dept) from e in employee0 and m in manager0 "
        "where e.id = m.id and e.salary > 450"
    )

    def run():
        return mediator.query(query)

    result = benchmark(run)
    assert not result.is_partial
    benchmark.extra_info.update(
        {
            "capability": join_capability,
            "rows_shipped_to_mediator": sum(report.rows for report in result.reports),
        }
    )

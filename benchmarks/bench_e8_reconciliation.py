"""E8: maps, subtyping and views reconcile similar and dissimilar sources
(paper Sections 2.2-2.3).

Measures the cost of the three reconciliation mechanisms on top of a growing
federation: a local transformation map (PersonPrime), the recursive ``type*``
extent over a subtype hierarchy (Student under Person), and the multi-level
views (``double``, ``multiple``) with their reconciliation functions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro import LocalTransformationMap, RelationalWrapper
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.sources.workload import generate_student_rows


def _add_student_sources(mediator, count: int) -> None:
    mediator.define_interface(
        "Student", [("university", "String")], supertype="Person", extent_name="student"
    )
    for index in range(count):
        engine = RelationalEngine(f"studentdb{index}")
        engine.create_table(
            f"student{index}",
            rows=generate_student_rows(30, seed=50 + index, id_offset=10_000 + index * 100),
        )
        server = SimulatedServer(f"student-host{index}", engine)
        mediator.register_wrapper(f"ws{index}", RelationalWrapper(f"ws{index}", server))
        mediator.create_repository(f"rs{index}", host=server.name)
        mediator.add_extent(f"student{index}", "Student", f"ws{index}", f"rs{index}")


def test_e8_map_overhead(benchmark):
    """Querying through a local transformation map vs the plain extent."""
    mediator = build_person_federation(sources=1, rows_per_source=200)
    mediator.define_interface(
        "PersonPrime", [("n", "String"), ("s", "Short")], extent_name="personprime"
    )
    mapping = LocalTransformationMap.from_pairs(
        [("person0", "personprime0"), ("name", "n"), ("salary", "s")]
    )
    mediator.add_extent("personprime0", "PersonPrime", "w0", "r0", map=mapping)
    plain = mediator.query("select x.name from x in person0 where x.salary > 250")

    def run():
        return mediator.query("select x.n from x in personprime0 where x.s > 250")

    mapped = benchmark(run)
    assert mapped.data == plain.data
    benchmark.extra_info["rows"] = len(mapped.rows())


@pytest.mark.parametrize("student_sources", [1, 4])
def test_e8_person_star_over_subtype_hierarchy(benchmark, student_sources):
    """The recursive extent person* fans out over subtype extents too."""
    mediator = build_person_federation(sources=2, rows_per_source=50)
    _add_student_sources(mediator, student_sources)

    def run():
        return mediator.query("select x.name from x in person*")

    result = benchmark(run)
    assert result.sources_contacted() == 2 + student_sources
    benchmark.extra_info["student_sources"] = student_sources
    benchmark.extra_info["rows"] = len(result.rows())


def test_e8_double_view_reconciliation(benchmark):
    """The paper's ``double`` view: one reconciliation function over two sources."""
    mediator = build_person_federation(sources=2, rows_per_source=100, seed=21)
    # Make ids overlap so the join produces rows.
    engine1 = mediator.registry.wrapper_object("w1").server.store
    engine1.table("person1").clear()
    engine0 = mediator.registry.wrapper_object("w0").server.store
    engine1.table("person1").insert_many(engine0.scan("person0"))
    mediator.define_view(
        "double",
        "select struct(name: x.name, salary: x.salary + y.salary) "
        "from x in person0 and y in person1 where x.id = y.id",
    )

    def run():
        return mediator.query("double")

    result = benchmark(run)
    assert len(result.rows()) == 100
    assert all(row["salary"] % 2 == 0 for row in result.rows())


def test_e8_multiple_view_with_aggregate(benchmark):
    """The ``multiple`` view: a correlated aggregate over person*."""
    mediator = build_person_federation(sources=2, rows_per_source=20, seed=22)
    _add_student_sources(mediator, 1)
    mediator.define_view(
        "multiple",
        "select struct(name: x.name, salary: sum(select z.salary from z in person "
        "where x.id = z.id)) from x in person*",
    )

    def run():
        return mediator.query("multiple")

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    # 2 person sources x 20 rows + 1 student source x 30 rows
    assert len(result.rows()) == 70
    benchmark.extra_info["rows"] = len(result.rows())


def test_e8_dissimilar_structure_view(benchmark):
    """The ``personnew`` view merging Person with the split-salary PersonTwo."""
    mediator = build_person_federation(sources=2, rows_per_source=50, seed=23)
    engine = RelationalEngine("persontwodb")
    engine.create_table(
        "persontwo0",
        rows=[
            {"name": f"consultant{i}", "regular": 40 + i, "consult": 10 + i}
            for i in range(50)
        ],
    )
    server = SimulatedServer("persontwo-host", engine)
    mediator.register_wrapper("wt", RelationalWrapper("wt", server))
    mediator.create_repository("rt", host="persontwo-host")
    mediator.define_interface(
        "PersonTwo",
        [("name", "String"), ("regular", "Short"), ("consult", "Short")],
        extent_name="persontwo",
    )
    mediator.add_extent("persontwo0", "PersonTwo", "wt", "rt")
    mediator.define_view(
        "personnew",
        "bag(select struct(name: x.name, salary: x.salary) from x in person, "
        "select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)",
    )

    def run():
        return mediator.query("select p.name from p in flatten(personnew)")

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result.rows()) == 150

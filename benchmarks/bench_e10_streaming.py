"""E10: streaming execution -- bounded memory and early first rows.

The streaming engine's two claims over the barrier executor:

* **O(batch) intermediate allocation.**  A ``scan -> filter -> limit``
  pipeline over a 100k-row cursor source pulls only the rows the limit
  needs: the scan is never drained and peak allocation during consumption
  stays orders of magnitude below full materialization.
* **Time to first row tracks the fastest source, not the slowest.**  Under
  ``LIMIT 10`` over a federation with one slow source, the streaming result
  yields its first row while the slow source is still sleeping; the barrier
  engine has to wait the full latency before returning anything.
"""

from __future__ import annotations

import time
import tracemalloc

from benchmarks.conftest import SRC  # noqa: F401  (ensures src/ is importable)
from repro import GeneratorWrapper, Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet
from repro.sources import RelationalEngine, SimulatedServer
from repro.sources.network import NetworkProfile

ROWS = 100_000
#: big enough that the >=5x first-row speedup assertion tolerates scheduler
#: noise on loaded CI runners (time-to-first-row may be up to LATENCY/5).
SLOW_LATENCY = 2.0
LIMIT_QUERY = "select x.name from x in person where x.salary > 10 limit 10"


class CountingScan:
    """A 100k-row lazy cursor that records how far it was drained."""

    def __init__(self, rows: int = ROWS):
        self.rows = rows
        self.yielded = 0

    def __call__(self):
        def generate():
            for i in range(self.rows):
                self.yielded += 1
                yield {"id": i, "name": f"p{i}", "salary": i % 1000}

        return generate()


def build_cursor_mediator(scan: CountingScan) -> Mediator:
    # No ``limit`` capability: this experiment isolates the *engines*'
    # behaviour, so the fetch size must not cross the wrapper boundary
    # (bench_e11 measures the capability pushdown itself).
    mediator = Mediator(name="e10-cursor")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.register_wrapper(
        "w0",
        GeneratorWrapper(
            "w0",
            {"person0": scan},
            attributes={"person0": ["id", "name", "salary"]},
            capabilities=CapabilitySet.of("get", "project", "select", "union", "flatten"),
        ),
    )
    mediator.create_repository("r0")
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator


def build_fast_slow_federation() -> Mediator:
    """person0 answers instantly; person1 sleeps SLOW_LATENCY per call."""
    mediator = Mediator(name="e10-federation")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    for index, latency in enumerate([0.0, SLOW_LATENCY]):
        engine = RelationalEngine(name=f"db{index}")
        engine.create_table(
            f"person{index}",
            rows=[
                {"id": i, "name": f"s{index}_{i}", "salary": 100 + i} for i in range(200)
            ],
        )
        server = SimulatedServer(
            name=f"host{index}",
            store=engine,
            network=NetworkProfile(base_latency=latency),
            real_sleep=latency > 0,
        )
        mediator.register_wrapper(f"w{index}", RelationalWrapper(f"w{index}", server))
        mediator.create_repository(f"r{index}", host=server.name)
        mediator.add_extent(f"person{index}", "Person", f"w{index}", f"r{index}")
    return mediator


def _peak_allocation(run) -> tuple[int, object]:
    tracemalloc.start()
    try:
        result = run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def test_e10_limit_does_not_materialize_the_scan(benchmark):
    """LIMIT 10 over a 100k-row cursor: O(batch) rows pulled, O(batch) memory."""
    streaming_scan = CountingScan()
    streaming_mediator = build_cursor_mediator(streaming_scan)
    materializing_scan = CountingScan()
    materializing_mediator = build_cursor_mediator(materializing_scan)

    def streamed():
        result = streaming_mediator.query_stream(LIMIT_QUERY)
        return list(result.iter_rows())

    streaming_peak, rows = _peak_allocation(lambda: benchmark.pedantic(streamed, rounds=3))
    assert len(rows) == 10
    # The barrier engine drains the wrapper before evaluating, the streaming
    # engine stops the cursor after the limit (plus pipeline lookahead).
    materialized_peak, materialized_rows = _peak_allocation(
        lambda: materializing_mediator.query(LIMIT_QUERY).rows()
    )
    assert len(materialized_rows) == 10
    assert streaming_scan.yielded < 1_000 < ROWS  # scan abandoned, not drained
    assert materializing_scan.yielded >= ROWS  # the barrier engine drains it
    assert streaming_peak * 10 < materialized_peak
    benchmark.extra_info["rows_in_source"] = ROWS
    benchmark.extra_info["rows_pulled_streaming"] = streaming_scan.yielded
    benchmark.extra_info["rows_pulled_materialized"] = materializing_scan.yielded
    benchmark.extra_info["peak_bytes_streaming"] = streaming_peak
    benchmark.extra_info["peak_bytes_materialized"] = materialized_peak
    streaming_mediator.close()
    materializing_mediator.close()


def test_e10_time_to_first_row_beats_materialization(benchmark):
    """LIMIT 10 with a slow source: first row ~instant, barrier waits the latency."""
    mediator = build_fast_slow_federation()

    def first_row_streamed():
        started = time.monotonic()
        result = mediator.query_stream(LIMIT_QUERY, timeout=10.0)
        iterator = result.iter_rows()
        first = next(iterator)
        ttfr = time.monotonic() - started
        rest = list(iterator)
        result.close()
        return first, 1 + len(rest), ttfr

    first, count, ttfr = benchmark.pedantic(first_row_streamed, rounds=3, iterations=1)
    assert first.startswith("s0_")  # the fast source fed the pipeline first
    assert count == 10

    started = time.monotonic()
    materialized = mediator.query(LIMIT_QUERY, timeout=10.0)
    rows = materialized.rows()
    full_time = time.monotonic() - started
    assert len(rows) == 10
    assert full_time >= SLOW_LATENCY  # the barrier waits for the slow source
    assert ttfr * 5 <= full_time  # acceptance: >= 5x faster to the first row
    benchmark.extra_info["time_to_first_row_s"] = round(ttfr, 4)
    benchmark.extra_info["full_materialization_s"] = round(full_time, 4)
    benchmark.extra_info["speedup_x"] = round(full_time / max(ttfr, 1e-9), 1)
    mediator.close()

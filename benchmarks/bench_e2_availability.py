"""E2: answer availability versus the number of data sources (paper Section 1).

The paper: "The availability of answers in the system declines as the number
of databases rises."  With per-source availability p, a blocking system
answers with probability ~ p**N, while DISCO's partial-evaluation semantics
returns a (possibly partial) answer every time.  The benchmark measures both
the observed completeness rates and the cost of producing a partial answer.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro.baselines import BlockingSemantics, complete_answer_probability

QUERY = "select x.name from x in person where x.salary > 250"
FAILURE_PROBABILITY = 0.1
ATTEMPTS = 20
SOURCE_COUNTS = [1, 2, 4, 8, 16]


@pytest.mark.parametrize("sources", SOURCE_COUNTS)
def test_e2_blocking_vs_partial_completeness(benchmark, sources):
    """Observed completeness under blocking semantics vs DISCO, per source count."""
    mediator = build_person_federation(
        sources=sources, failure_probability=FAILURE_PROBABILITY, rows_per_source=20
    )
    blocking = BlockingSemantics(mediator, raise_on_unavailable=False)

    def run():
        blocking_answers = 0
        disco_answers = 0
        disco_partials = 0
        for _ in range(ATTEMPTS):
            if blocking.answered(QUERY):
                blocking_answers += 1
            result = mediator.query(QUERY)
            if result.is_partial:
                disco_partials += 1
            else:
                disco_answers += 1
        return blocking_answers, disco_answers, disco_partials

    blocking_answers, disco_answers, disco_partials = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    analytic = complete_answer_probability(1 - FAILURE_PROBABILITY, sources)
    benchmark.extra_info.update(
        {
            "sources": sources,
            "analytic_blocking_probability": round(analytic, 3),
            "blocking_answers": f"{blocking_answers}/{2 * ATTEMPTS}",
            "disco_complete": disco_answers,
            "disco_partial": disco_partials,
        }
    )
    # DISCO always answers; blocking answers at most as often as DISCO is complete.
    assert disco_answers + disco_partials == ATTEMPTS


@pytest.mark.parametrize("sources", [4, 16])
def test_e2_partial_answer_overhead(benchmark, sources):
    """Latency of building a partial answer when one source is down."""
    mediator = build_person_federation(sources=sources, rows_per_source=20)
    registry_servers = [
        mediator.registry.wrapper_object(f"w{i}").server for i in range(sources)
    ]
    registry_servers[0].take_down()

    def run():
        return mediator.query(QUERY)

    result = benchmark(run)
    assert result.is_partial
    assert result.unavailable_sources == ("person0",)
    benchmark.extra_info["sources"] = sources
    benchmark.extra_info["partial_query_length"] = len(result.partial_query)

"""E9: fault isolation -- wall clock is bounded by the deadline, not the sum of latencies.

The fault-isolating exec engine makes two claims beyond E2's availability
numbers:

* a query over N available sources plus one *crashing* wrapper returns a
  partial answer (with the crash recorded on the result), never an exception;
* a query over N available sources plus one *slow* source costs at most the
  global deadline, because results are collected in completion order under a
  single deadline -- the slow source never serializes the others.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_person_federation
from repro.sources.network import NetworkProfile

QUERY = "select x.name from x in person where x.salary > 250"
SOURCES = 4  # available sources; one extra source is made slow or crashy
DEADLINE = 0.25


def _server(mediator, index):
    return mediator.registry.wrapper_object(f"w{index}").server


def test_e9_crashing_wrapper_yields_partial_answer(benchmark):
    """N healthy sources + 1 wrapper that raises a generic exception."""
    mediator = build_person_federation(sources=SOURCES + 1, rows_per_source=20)
    crashy = _server(mediator, SOURCES)
    rounds = 5
    crashy.availability.crash_next(RuntimeError("connection reset by peer"), count=rounds)

    def run():
        return mediator.query(QUERY)

    result = benchmark.pedantic(run, rounds=rounds, iterations=1)
    assert result.is_partial
    assert result.unavailable_sources == (f"person{SOURCES}",)
    assert "RuntimeError" in result.errors()[f"person{SOURCES}"]
    benchmark.extra_info["healthy_sources"] = SOURCES
    benchmark.extra_info["partial_query_length"] = len(result.partial_query)


def test_e9_slow_source_bounded_by_deadline(benchmark):
    """N healthy sources + 1 source slower than the deadline: cost <= deadline + eps."""
    mediator = build_person_federation(sources=SOURCES + 1, rows_per_source=20)
    slow = _server(mediator, SOURCES)
    slow.network = NetworkProfile(base_latency=4 * DEADLINE)
    slow.real_sleep = True

    def run():
        started = time.monotonic()
        result = mediator.query(QUERY, timeout=DEADLINE)
        return result, time.monotonic() - started

    result, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_partial
    assert result.unavailable_sources == (f"person{SOURCES}",)
    assert "timed out" in result.errors()[f"person{SOURCES}"]
    # Bounded by the deadline (plus scheduling slack), nowhere near the 1s sleep.
    assert elapsed <= DEADLINE + 0.15
    benchmark.extra_info["deadline_s"] = DEADLINE
    benchmark.extra_info["slow_source_latency_s"] = 4 * DEADLINE
    benchmark.extra_info["observed_wall_clock_s"] = round(elapsed, 4)


@pytest.mark.parametrize("latency", [0.05])
def test_e9_parallel_collection_beats_latency_sum(benchmark, latency):
    """All sources equally slow: wall clock ~ one latency, not sources * latency."""
    mediator = build_person_federation(sources=SOURCES, rows_per_source=20)
    for index in range(SOURCES):
        server = _server(mediator, index)
        server.network = NetworkProfile(base_latency=latency)
        server.real_sleep = True

    def run():
        started = time.monotonic()
        result = mediator.query(QUERY)
        return result, time.monotonic() - started

    result, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.is_partial
    assert elapsed < SOURCES * latency  # sequential collection would pay the sum
    benchmark.extra_info["sources"] = SOURCES
    benchmark.extra_info["latency_sum_s"] = SOURCES * latency
    benchmark.extra_info["observed_wall_clock_s"] = round(elapsed, 4)

"""E7 / Figure 2: the Prototype 0 pipeline, stage by stage.

Figure 2 shows the single-process prototype: ODL parser, OQL parser, internal
database, query optimizer, run-time system and wrappers.  The benchmark times
each stage separately (ODL load, OQL parse, bind+translate+optimize, execute)
and the whole pipeline on the paper's example schema and query.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro.core.registry import Registry
from repro.odl.loader import OdlLoader
from repro.oql.parser import parse_query
from repro.wrappers.base import Wrapper
from repro.algebra.capabilities import CapabilitySet

PAPER_ODL = """
interface Person (extent person) {
    attribute Long id;
    attribute String name;
    attribute Short salary;
}
interface Student : Person { }
repository r0 (host="rodin", name="db", address="123.45.6.7");
repository r1 (host="umiacs");
extent person0 of Person wrapper w0 repository r0;
extent person1 of Person wrapper w0 repository r1;
define rich as select x from x in person where x.salary > 100;
"""

PAPER_QUERY = "select x.name from x in person where x.salary > 10"


class _NullWrapper(Wrapper):
    """Capability-only wrapper used when benchmarking the frontend stages."""

    def __init__(self):
        super().__init__("null", CapabilitySet.full())

    def _execute(self, expression):  # pragma: no cover - never executed
        return []


def test_fig2_odl_load(benchmark):
    """ODL parse + internal-database update for the paper's schema."""

    def run():
        registry = Registry()
        registry.add_wrapper("w0", _NullWrapper())
        OdlLoader(registry).load(PAPER_ODL)
        return registry

    registry = benchmark(run)
    assert len(registry.schema.extents()) == 2


def test_fig2_oql_parse(benchmark):
    """OQL parsing of the paper's query."""
    query = benchmark(lambda: parse_query(PAPER_QUERY))
    assert query.bindings[0].variable == "x"


def test_fig2_optimize(benchmark):
    """Bind + translate + optimize against a live internal database."""
    mediator = build_person_federation(sources=2, rows_per_source=10)

    def run():
        return mediator.planner.plan(PAPER_QUERY, use_cache=False)

    planned = benchmark(run)
    assert planned.optimized is not None
    benchmark.extra_info["logical_alternatives"] = planned.optimized.logical_alternatives


def test_fig2_execute(benchmark):
    """Run-time execution of an already-optimized plan."""
    mediator = build_person_federation(sources=2, rows_per_source=10)
    planned = mediator.planner.plan(PAPER_QUERY)

    def run():
        return mediator.executor.execute(planned.optimized.physical)

    result = benchmark(run)
    assert not result.is_partial


def test_fig2_whole_pipeline(benchmark):
    """Parse -> bind -> translate -> optimize -> execute, plan cache disabled."""
    mediator = build_person_federation(sources=2, rows_per_source=10, seed=3)
    mediator.planner.plan_cache = None

    def run():
        return mediator.query(PAPER_QUERY)

    result = benchmark(run)
    assert not result.is_partial


def test_fig2_whole_pipeline_with_plan_cache(benchmark):
    """Same pipeline with the plan cache on: repeated queries skip optimization."""
    mediator = build_person_federation(sources=2, rows_per_source=10, seed=3)
    mediator.query(PAPER_QUERY)

    def run():
        return mediator.query(PAPER_QUERY)

    result = benchmark(run)
    assert result.from_plan_cache

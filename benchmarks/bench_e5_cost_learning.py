"""E5: learning source costs from recorded exec calls (paper Section 3.3).

The mediator records the arguments, elapsed time and result size of every
``exec`` call.  Estimates come from exactly matching calls, then from close
matches (same expression shape, different constants), then from the 0/1
default.  The benchmark measures (a) how the cardinality-estimate error drops
as calls accumulate, (b) the estimation policies against each other, and (c)
the plan-quality effect: after the history has seen a big and a small source,
the optimizer builds hash joins with the small side where it belongs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_person_federation
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import Get, Select
from repro.optimizer.history import ExecCallHistory

QUERY_TEMPLATE = "select x.name from x in person where x.salary > {threshold}"
THRESHOLDS = [50, 100, 150, 200, 250, 300, 350, 400, 450]


def _estimate_error(history: ExecCallHistory, extent: str, expression, actual: int) -> float:
    estimate = history.estimate(extent, expression)
    return abs(estimate.rows - actual) / max(actual, 1)


def test_e5_estimate_error_drops_with_recorded_calls(benchmark):
    """Median relative cardinality error, before vs after warming the history."""
    mediator = build_person_federation(sources=2, rows_per_source=300)

    def run():
        mediator.history.clear()
        errors = []
        for round_index, threshold in enumerate(THRESHOLDS):
            query = QUERY_TEMPLATE.format(threshold=threshold)
            expression = Select(
                "x",
                Comparison(">", Path(Var("x"), "salary"), Const(threshold)),
                Get("person0"),
            )
            result = mediator.query(query)
            actual = result.reports[0].rows
            errors.append(
                (round_index, _estimate_error(mediator.history, "person0", expression, actual))
            )
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_error = errors[0][1]
    warm_error = sum(error for _, error in errors[-3:]) / 3
    benchmark.extra_info.update(
        {"cold_error": round(cold_error, 3), "warm_error": round(warm_error, 3)}
    )
    # With no history the default data cost of 1 badly underestimates; after a
    # few close-matching calls the estimate tracks the true cardinality.
    assert warm_error < cold_error


@pytest.mark.parametrize("policy", ["exact", "close", "default"])
def test_e5_estimation_policies(benchmark, policy):
    """Estimation accuracy of the three policies on a parameterised query."""
    history = ExecCallHistory()
    recorded = Select("x", Comparison(">", Path(Var("x"), "salary"), Const(100)), Get("person0"))
    for _ in range(8):
        history.record("person0", recorded, elapsed=0.01, rows=240)
    if policy == "exact":
        probe = recorded
    elif policy == "close":
        probe = Select("x", Comparison(">", Path(Var("x"), "salary"), Const(425)), Get("person0"))
    else:
        probe = Select("x", Comparison("<", Path(Var("x"), "salary"), Const(425)), Get("person0"))

    def run():
        return history.estimate("person0", probe)

    estimate = benchmark(run)
    assert estimate.kind == policy
    benchmark.extra_info.update({"policy": policy, "estimated_rows": estimate.rows})


def test_e5_history_improves_plan_cost_fidelity(benchmark):
    """Estimated plan cost converges towards observed cost once history exists."""
    mediator = build_person_federation(sources=4, rows_per_source=300)
    query = QUERY_TEMPLATE.format(threshold=50)

    def run():
        mediator.history.clear()
        cold = mediator.explain(query).optimized.cost.total()
        for _ in range(3):
            mediator.query(query)
        warm = mediator.planner.plan(query, use_cache=False).optimized.cost.total()
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"cold_estimate": cold, "warm_estimate": warm})
    # The warm estimate accounts for the real row counts, so it is larger than
    # the optimistic 0/1 default estimate.
    assert warm > cold

"""E11: the ``limit`` capability terminal -- fetch-size pushdown across submit.

A ``LIMIT 10`` over a 100k-row remote extent.  When the wrapper declares the
``limit`` terminal the rewriter folds the cap into the submitted expression
and the source stops scanning server-side: fewer than 1% of the extent's rows
ever cross the (simulated) wire.  The no-capability baseline ships the whole
extent and truncates at the mediator.  Both engines benefit -- the barrier
path because the wrapper materializes only the capped rows, the streaming
path because the source cursor is never opened past the cap.
"""

from __future__ import annotations

from benchmarks.conftest import SRC  # noqa: F401  (ensures src/ is importable)
from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import CapabilitySet
from repro.sources import RelationalEngine, SimulatedServer

ROWS = 100_000
QUERY = "select x.name from x in big0 limit 10"

#: everything the full capability set has except the limit terminal.
NO_LIMIT_CAPS = CapabilitySet.of("get", "project", "select", "join", "union", "flatten")


def build_big_mediator(capabilities: CapabilitySet | None) -> tuple[Mediator, SimulatedServer]:
    engine = RelationalEngine(name="bigdb")
    engine.create_table(
        "big0", rows=[{"id": i, "name": f"p{i}", "salary": i % 997} for i in range(ROWS)]
    )
    server = SimulatedServer(name="bighost", store=engine)
    mediator = Mediator(name="e11")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server, capabilities=capabilities))
    mediator.create_repository("r0", host=server.name)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="big",
    )
    mediator.add_extent("big0", "Person", "w0", "r0")
    return mediator, server


def _shipped_rows(capabilities: CapabilitySet | None, run) -> tuple[int, int]:
    mediator, server = build_big_mediator(capabilities)
    try:
        rows = run(mediator)
        return len(rows), server.statistics.rows_returned
    finally:
        mediator.close()


def test_e11_limit_pushdown_ships_under_one_percent(benchmark):
    """Capability wrapper ships <1% of the rows the baseline ships (barrier)."""

    def barrier(mediator):
        return mediator.query(QUERY).rows()

    capped_count, capped_shipped = _shipped_rows(None, barrier)
    baseline_count, baseline_shipped = _shipped_rows(NO_LIMIT_CAPS, barrier)
    assert capped_count == baseline_count == 10
    assert baseline_shipped >= ROWS
    assert capped_shipped < 0.01 * baseline_shipped  # the headline claim
    assert capped_shipped == 10

    # Benchmark the capability path end to end (plan cache warm after run 1).
    mediator, server = build_big_mediator(None)
    try:
        rows = benchmark(lambda: mediator.query(QUERY).rows())
        assert len(rows) == 10
    finally:
        mediator.close()
    benchmark.extra_info["rows_in_extent"] = ROWS
    benchmark.extra_info["rows_shipped_with_capability"] = capped_shipped
    benchmark.extra_info["rows_shipped_baseline"] = baseline_shipped


def test_e11_streaming_engine_pushes_the_same_cap(benchmark):
    """The streaming engine ships the same capped row count."""

    def streamed(mediator):
        return list(mediator.query_stream(QUERY).iter_rows())

    capped_count, capped_shipped = _shipped_rows(None, streamed)
    assert capped_count == 10
    assert capped_shipped <= 10  # a lazy cursor may ship even fewer

    mediator, _server = build_big_mediator(None)
    try:
        rows = benchmark(lambda: list(mediator.query_stream(QUERY).iter_rows()))
        assert len(rows) == 10
    finally:
        mediator.close()

"""E1 / Figure 1: end-to-end query latency through the full architecture.

Reproduces the architecture of Figure 1 (application -> mediator -> wrappers
-> data sources) on the water-quality workload and measures end-to-end query
latency as the number of federated stations grows.  The paper makes no
latency claim for the figure itself; the series documents that the mediator
pipeline scales linearly in the number of sources it fans out to.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_water_federation

QUERY = 'select m.value from m in measurements where m.parameter = "ph" and m.value > 7'

SOURCE_COUNTS = [1, 2, 4, 8, 16]


@pytest.mark.parametrize("sources", SOURCE_COUNTS)
def test_fig1_end_to_end_latency(benchmark, sources):
    """Latency of one federated query versus the number of stations."""
    mediator = build_water_federation(sources=sources, rows_per_source=50)

    def run():
        return mediator.query(QUERY)

    result = benchmark(run)
    assert not result.is_partial
    assert result.sources_contacted() == sources
    benchmark.extra_info["sources"] = sources
    benchmark.extra_info["rows_returned"] = len(result.rows())


def test_fig1_architecture_components_are_exercised(benchmark):
    """One run through every Figure-1 component, with per-stage accounting."""
    mediator = build_water_federation(sources=4, rows_per_source=50)

    def run():
        planned = mediator.explain(QUERY)
        result = mediator.query(QUERY)
        return planned, result

    planned, result = benchmark(run)
    assert planned.optimized is not None
    assert all(report.available for report in result.reports)
    benchmark.extra_info["logical_plan"] = planned.optimized.logical.to_text()[:120]

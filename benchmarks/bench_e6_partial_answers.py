"""E6: partial answers round-trip to the full answer (paper Section 4).

Verifies and times the paper's key property: re-submitting a partial answer
once the unavailable sources are back returns exactly the answer the original
query would have produced, and the overhead of partial evaluation (building
the answer-as-a-query) stays small.  Also sweeps the designated timeout.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PERSON_QUERY, build_person_federation
from repro.sources.network import NetworkProfile


def _servers(mediator, count):
    return [mediator.registry.wrapper_object(f"w{i}").server for i in range(count)]


@pytest.mark.parametrize("sources", [2, 4, 8])
def test_e6_partial_then_resubmit_equals_direct_answer(benchmark, sources):
    """Partial answer + recovery + re-submission gives the original answer."""
    mediator = build_person_federation(sources=sources, rows_per_source=40)
    servers = _servers(mediator, sources)
    expected = mediator.query(PERSON_QUERY).data

    def run():
        servers[0].take_down()
        partial = mediator.query(PERSON_QUERY)
        servers[0].bring_up()
        recovered = mediator.resubmit(partial)
        return partial, recovered

    partial, recovered = benchmark(run)
    assert partial.is_partial
    assert recovered.data == expected
    benchmark.extra_info.update(
        {"sources": sources, "partial_query_length": len(partial.partial_query)}
    )


@pytest.mark.parametrize("down", [1, 2, 4])
def test_e6_partial_answer_construction_cost(benchmark, down):
    """Cost of building the answer-as-a-query as more sources are down."""
    sources = 8
    mediator = build_person_federation(sources=sources, rows_per_source=40)
    servers = _servers(mediator, sources)
    for server in servers[:down]:
        server.take_down()

    def run():
        return mediator.query(PERSON_QUERY)

    result = benchmark(run)
    assert result.is_partial
    assert len(result.unavailable_sources) == down
    benchmark.extra_info.update(
        {"sources_down": down, "partial_query_length": len(result.partial_query)}
    )


@pytest.mark.parametrize("timeout", [0.02, 0.1, 0.5])
def test_e6_timeout_sweep(benchmark, timeout):
    """The designated time period trades latency against answer completeness."""
    sources = 4
    mediator = build_person_federation(sources=sources, rows_per_source=40)
    servers = _servers(mediator, sources)
    # One slow source: with a short timeout it is declared unavailable.
    servers[0].network = NetworkProfile(base_latency=0.2)
    servers[0].real_sleep = True

    def run():
        return mediator.query(PERSON_QUERY, timeout=timeout)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"timeout": timeout, "is_partial": result.is_partial}
    )
    if timeout < 0.2:
        assert result.is_partial
    else:
        assert not result.is_partial

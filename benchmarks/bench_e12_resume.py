"""E12: mid-stream recovery -- resume tokens ship only the remaining rows.

A streaming query over one big remote extent whose connection drops after
most of the extent has already been delivered.  Three recovery policies over
the same fault:

* **token** -- the wrapper resumes source-side from the stream's cursor
  token: the server seeks past the delivered rows and ships only the rows
  still owed, so total shipping stays at one extent's worth;
* **replay** -- the wrapper only guarantees deterministic re-evaluation: the
  mediator reopens from scratch and drops the delivered prefix, re-shipping
  it (extent + prefix cross the wire);
* **none** -- no resume declaration: the call is written off and the answer
  is permanently partial, however many retries remain.

All three deliver every row at most once; only token recovery also ships
every row at most once.
"""

from __future__ import annotations

from benchmarks.conftest import SRC  # noqa: F401  (ensures src/ is importable)
from repro import Mediator, RelationalWrapper
from repro.sources import RelationalEngine, SimulatedServer

ROWS = 5_000
KILL_AFTER = 4_000  # the connection drops with 80% already delivered
QUERY = "select x.name from x in big0"


def build_mediator(resume: str | None) -> tuple[Mediator, SimulatedServer]:
    engine = RelationalEngine(name="bigdb")
    engine.create_table(
        "big0", rows=[{"id": i, "name": f"p{i}", "salary": i % 997} for i in range(ROWS)]
    )
    server = SimulatedServer(name="bighost", store=engine)
    mediator = Mediator(name="e12", max_retries=2)
    mediator.executor.config.retry_backoff = 0.001
    mediator.register_wrapper("w0", RelationalWrapper("w0", server, resume=resume))
    mediator.create_repository("r0", host=server.name)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="big",
    )
    mediator.add_extent("big0", "Person", "w0", "r0")
    return mediator, server


def run_killed_stream(resume: str | None):
    """One streaming query with the mid-stream kill armed; returns evidence."""
    mediator, server = build_mediator(resume)
    try:
        server.availability.kill_after(KILL_AFTER)
        result = mediator.query_stream(QUERY)
        rows = list(result.iter_rows())
        report = result.reports[0]
        return {
            "rows": rows,
            "partial": result.is_partial,
            "resumed_calls": report.resumed_calls,
            "replayed_rows": report.replayed_rows,
            "shipped": server.statistics.rows_returned,
            "skipped": server.statistics.rows_skipped,
        }
    finally:
        mediator.close()


def test_e12_token_resume_ships_only_the_remaining_rows(benchmark):
    """The headline claim: a token resume never re-ships delivered rows."""
    token = run_killed_stream("token")
    replay = run_killed_stream("replay")

    # Both policies recover the complete extent, exactly once.
    expected = [f"p{i}" for i in range(ROWS)]
    assert token["rows"] == expected and not token["partial"]
    assert replay["rows"] == expected and not replay["partial"]
    assert token["resumed_calls"] == 1 and replay["resumed_calls"] == 1

    # Token recovery ships each row once: the delivered prefix plus the
    # remainder.  Replay re-ships the prefix on top (and the mediator drops
    # it again), so it pays KILL_AFTER extra rows on the wire.
    assert token["shipped"] == ROWS
    assert token["skipped"] == KILL_AFTER
    assert token["replayed_rows"] == 0
    assert replay["shipped"] == ROWS + KILL_AFTER
    assert replay["replayed_rows"] == KILL_AFTER
    assert token["shipped"] < replay["shipped"]

    # Without resume support the write-off stands: the delivered prefix is
    # all there will ever be.
    written_off = run_killed_stream(None)
    assert written_off["partial"]
    assert written_off["rows"] == expected[:KILL_AFTER]
    assert written_off["resumed_calls"] == 0

    # Benchmark the token-recovery path end to end (kill re-armed per round).
    rows = benchmark(lambda: run_killed_stream("token")["rows"])
    assert len(rows) == ROWS
    benchmark.extra_info["rows_in_extent"] = ROWS
    benchmark.extra_info["kill_after"] = KILL_AFTER
    benchmark.extra_info["rows_shipped_token"] = token["shipped"]
    benchmark.extra_info["rows_shipped_replay"] = replay["shipped"]

"""E14: batched bind-join probes -- the ``in``-list capability terminal.

A bind join whose outer side has ``FANOUT`` rows used to cost ``FANOUT``
wrapper round trips: one ``select(y: y.id = k, get(right0))`` per binding.
With the ``in`` terminal the mediator collects up to
``ExecutorConfig.bind_batch_size`` *distinct* probe keys and submits them as
one set-valued ``select(y: y.id in (...), get(right0))`` -- rendered as
``IN (...)`` by the mini-SQL dialect -- so the wrapper-call count drops by
roughly the batch size (250x at fanout 10^4 with the default batch of 256).

The paper's claim is about communication, so the headline numbers are calls
issued and wall clock, per-binding (``bind_batch_size=1``) versus batched.
Adaptive re-planning is disabled here (``replan_blowup_factor=None``) to
measure pure batching: with it on, the uninformed mediator would flip both
modes into one full ship after a handful of probes, which is the *other*
E14 story (see tests/test_bind_batching.py for the replan flip itself).

``DISCO_E14_FANOUT`` overrides the headline fanout (the nightly CI run sets
100000); the probed extent stays at 1000 rows so the baseline's cost scales
with the probe *count*, not with a growing right side.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import SRC  # noqa: F401  (ensures src/ is importable)
from repro import Mediator, RelationalWrapper
from repro.sources import RelationalEngine, SimulatedServer

FANOUT = int(os.environ.get("DISCO_E14_FANOUT", "10000"))
RIGHT_ROWS = 1_000
QUERY = (
    "select struct(name: x.name, value: y.value) "
    "from x in left0, y in right0 where x.id = y.id"
)


def build_probe_federation(
    fanout: int, batch_size: int
) -> tuple[Mediator, SimulatedServer, SimulatedServer]:
    """Two sources: a ``fanout``-row outer extent probing a 1000-row inner."""
    outer_engine = RelationalEngine(name="outerdb")
    outer_engine.create_table(
        "left0", rows=[{"id": i, "name": f"p{i}"} for i in range(fanout)]
    )
    inner_engine = RelationalEngine(name="innerdb")
    inner_engine.create_table(
        "right0", rows=[{"id": i, "value": i * 3} for i in range(RIGHT_ROWS)]
    )
    outer = SimulatedServer(name="outerhost", store=outer_engine)
    inner = SimulatedServer(name="innerhost", store=inner_engine)
    mediator = Mediator(
        name="e14",
        timeout=600.0,
        bind_batch_size=batch_size,
        replan_blowup_factor=None,
    )
    mediator.register_wrapper("wl", RelationalWrapper("wl", outer))
    mediator.register_wrapper("wr", RelationalWrapper("wr", inner))
    mediator.create_repository("rl", host=outer.name)
    mediator.create_repository("rr", host=inner.name)
    mediator.define_interface(
        "Outer", [("id", "Long"), ("name", "String")], extent_name="left"
    )
    mediator.define_interface(
        "Inner", [("id", "Long"), ("value", "Long")], extent_name="right"
    )
    mediator.add_extent("left0", "Outer", "wl", "rl")
    mediator.add_extent("right0", "Inner", "wr", "rr")
    return mediator, outer, inner


def _run_once(fanout: int, batch_size: int, run) -> tuple[int, int, float]:
    """(answer rows, probe-side wrapper calls, wall seconds) for one run."""
    mediator, _outer, inner = build_probe_federation(fanout, batch_size)
    try:
        started = time.perf_counter()
        rows = run(mediator)
        elapsed = time.perf_counter() - started
        return len(rows), inner.statistics.requests, elapsed
    finally:
        mediator.close()


def test_e14_batched_probes_cut_wrapper_calls_50x(benchmark):
    """Fanout-10^4 headline: >=50x fewer probe calls, >=5x wall clock."""

    def barrier(mediator):
        return mediator.query(QUERY).rows()

    batched_rows, batched_calls, batched_wall = _run_once(FANOUT, 256, barrier)
    baseline_rows, baseline_calls, baseline_wall = _run_once(FANOUT, 1, barrier)
    assert batched_rows == baseline_rows == min(FANOUT, RIGHT_ROWS)
    assert baseline_calls >= FANOUT  # one probe per binding
    assert batched_calls * 50 <= baseline_calls  # the headline claim
    assert batched_wall * 5 <= baseline_wall

    # Benchmark the batched path end to end (plan cache warm after run 1).
    mediator, _outer, _inner = build_probe_federation(FANOUT, 256)
    try:
        rows = benchmark(lambda: mediator.query(QUERY).rows())
        assert len(rows) == min(FANOUT, RIGHT_ROWS)
    finally:
        mediator.close()
    benchmark.extra_info["fanout"] = FANOUT
    benchmark.extra_info["probe_calls_batched"] = batched_calls
    benchmark.extra_info["probe_calls_per_binding"] = baseline_calls
    benchmark.extra_info["wall_seconds_batched"] = round(batched_wall, 3)
    benchmark.extra_info["wall_seconds_per_binding"] = round(baseline_wall, 3)


def test_e14_call_count_scales_with_batches_not_bindings(benchmark):
    """Across fanouts 10^2-10^3, probe calls track ceil(fanout / batch)."""

    def barrier(mediator):
        return mediator.query(QUERY).rows()

    observed = {}
    for fanout in (100, 1_000):
        _rows, calls, _wall = _run_once(fanout, 256, barrier)
        assert calls == -(-fanout // 256)  # ceil: every batch is one call
        observed[fanout] = calls

    mediator, _outer, _inner = build_probe_federation(1_000, 256)
    try:
        rows = benchmark(lambda: mediator.query(QUERY).rows())
        assert len(rows) == 1_000
    finally:
        mediator.close()
    benchmark.extra_info["probe_calls_by_fanout"] = observed


def test_e14_streaming_engine_batches_the_same(benchmark):
    """The streaming engine issues the same batched probe calls."""

    def streamed(mediator):
        return list(mediator.query_stream(QUERY).iter_rows())

    rows, calls, _wall = _run_once(1_000, 256, streamed)
    assert rows == 1_000
    assert calls == -(-1_000 // 256)

    mediator, _outer, _inner = build_probe_federation(1_000, 256)
    try:
        rows = benchmark(lambda: list(mediator.query_stream(QUERY).iter_rows()))
        assert len(rows) == 1_000
    finally:
        mediator.close()

"""E16: the semantic answer cache under a skewed interactive workload.

One federation of latency-bearing Person sources answers a Zipfian(1.1)
stream drawn from 64 query templates -- the shape of a dashboard or a
repeated ad-hoc session, where a few queries dominate and the rest ride the
tail.  The same sequence runs twice:

* **cache off**: every draw plans and contacts the sources;
* **cache on**: exact repeats are served from materialized rows, and
  narrower variants (tighter ``limit``, projected items, appended
  conjuncts) are served by subsumption -- replaying the delta
  mediator-side over a cached superset, still without a source call.

Measured: per-draw latency (p50 of each run) and the cache counters from
``Mediator.statistics()``.  Asserted -- the acceptance bar for the cache:

* **>= 10x p50 improvement** cache-on vs cache-off on the skewed stream;
* **>= 80% combined hit rate** (exact + subsumption) over the draws;
* **zero wrapper calls on exact hits**: replaying the hottest template
  after warmup moves no ``ServerStatistics.requests`` counter.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import SRC, build_person_federation  # noqa: F401

from repro.runtime.answercache import AnswerCache

SOURCES = 4
ROWS_PER_SOURCE = 60
#: per-call simulated network latency; cache-off pays it on every draw.
BASE_LATENCY = 0.002
DRAWS = 400
ZIPF_ALPHA = 1.1
SEED = 1996


def query_templates() -> list[str]:
    """64 distinct queries over the Person federation, mixing every shape
    the subsumption matrix covers (select / project / distinct / limit)."""
    templates: list[str] = []
    for i in range(16):
        templates.append(f"select x from x in person where x.salary > {25 * i}")
    # Same thresholds as the bare selects: a first draw of any of these can
    # be served by subsumption from a cached counterpart above.
    for i in range(16):
        templates.append(f"select x.name from x in person where x.salary > {25 * i}")
    for i in range(16):
        templates.append(
            "select struct(n: x.name, s: x.salary) from x in person "
            f"where x.salary <= {25 * i + 15}"
        )
    for i in range(8):
        templates.append(f"select distinct x.name from x in person where x.salary > {50 * i}")
    for i in range(8):
        templates.append(f"select x.name from x in person where x.salary > 100 limit {5 * i + 5}")
    assert len(templates) == 64
    return templates


def zipfian_sequence(templates: list[str], draws: int, rng: random.Random) -> list[str]:
    """``draws`` template picks with Zipfian(ZIPF_ALPHA) rank weights."""
    weights = [1.0 / (rank + 1) ** ZIPF_ALPHA for rank in range(len(templates))]
    return rng.choices(templates, weights=weights, k=draws)


def run_workload(mediator, sequence: list[str]) -> list[float]:
    """Issue every draw in order; per-draw wall-clock latencies."""
    latencies = []
    for text in sequence:
        start = time.perf_counter()
        mediator.query(text)
        latencies.append(time.perf_counter() - start)
    return latencies


def p50(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[len(ordered) // 2]


def source_requests(mediator) -> int:
    return sum(
        wrapper.server.statistics.requests
        for wrapper in mediator.registry.schema.wrappers().values()
    )


def test_e16_zipfian_workload_hit_rate_and_latency(benchmark):
    rng = random.Random(SEED)
    sequence = zipfian_sequence(query_templates(), DRAWS, rng)

    plain = build_person_federation(
        SOURCES, rows_per_source=ROWS_PER_SOURCE, base_latency=BASE_LATENCY
    )
    cached = build_person_federation(
        SOURCES,
        rows_per_source=ROWS_PER_SOURCE,
        base_latency=BASE_LATENCY,
        answer_cache=AnswerCache(max_entries=256),
    )
    try:
        cold_p50 = p50(run_workload(plain, sequence))
        warm_p50 = p50(run_workload(cached, sequence))

        stats = cached.statistics()
        served = stats["answer_cache_hits"] + stats["answer_cache_subsumption_hits"]
        hit_rate = served / DRAWS

        # Zero wrapper calls on exact hits: replay the hottest template --
        # warmed by the workload above -- and watch the source counters.
        hottest = sequence[0]
        before = source_requests(cached)
        benchmark(lambda: cached.query(hottest).rows())
        assert source_requests(cached) == before, "exact hit contacted a source"

        assert hit_rate >= 0.80, f"combined hit rate {hit_rate:.2%} below 80%"
        assert cold_p50 >= 10 * warm_p50, (
            f"p50 improved only {cold_p50 / warm_p50:.1f}x "
            f"(off {cold_p50 * 1000:.2f}ms vs on {warm_p50 * 1000:.2f}ms)"
        )

        benchmark.extra_info["draws"] = DRAWS
        benchmark.extra_info["templates"] = 64
        benchmark.extra_info["zipf_alpha"] = ZIPF_ALPHA
        benchmark.extra_info["p50_off_ms"] = round(cold_p50 * 1000, 3)
        benchmark.extra_info["p50_on_ms"] = round(warm_p50 * 1000, 3)
        benchmark.extra_info["p50_speedup"] = round(cold_p50 / warm_p50, 1)
        benchmark.extra_info["hit_rate"] = round(hit_rate, 3)
        benchmark.extra_info["exact_hits"] = stats["answer_cache_hits"]
        benchmark.extra_info["subsumption_hits"] = stats["answer_cache_subsumption_hits"]
        benchmark.extra_info["evictions"] = stats["answer_cache_evictions"]
    finally:
        plain.close()
        cached.close()


def test_e16_cache_answers_match_the_plain_engine(benchmark):
    """Integrity rider: every template answered identically with and
    without the cache, after the cache is fully warm (so most answers come
    from materialized rows or subsumption replay, not the sources)."""
    from collections import Counter

    templates = query_templates()
    plain = build_person_federation(SOURCES, rows_per_source=ROWS_PER_SOURCE)
    cached = build_person_federation(
        SOURCES, rows_per_source=ROWS_PER_SOURCE, answer_cache=True
    )
    try:
        for text in templates:  # warm pass
            cached.query(text)

        def check_all() -> int:
            mismatches = 0
            for text in templates:
                want = plain.query(text).rows()
                got = cached.query(text).rows()
                if "limit" in text:
                    ok = len(got) == len(want) and not Counter(got) - Counter(want)
                else:
                    ok = Counter(got) == Counter(want)
                mismatches += 0 if ok else 1
            return mismatches

        assert benchmark(check_all) == 0
        stats = cached.statistics()
        assert stats["answer_cache_hits"] >= len(templates)
    finally:
        plain.close()
        cached.close()

"""Benchmark harness package (one module per paper experiment; see DESIGN.md)."""

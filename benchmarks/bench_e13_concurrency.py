"""E13: concurrent serving -- throughput, tail latency, and answer integrity.

One long-lived mediator behind a :class:`~repro.serving.MediatorServer`, hit
by a wave of N simulated clients (64 by default, raise via
``DISCO_E13_CLIENTS=64,256,1024``) with **fault injection on**: every source
call fails with 5% probability and the executor retries.  Each client issues
one of four distinguishable queries (different salary thresholds, so answers
differ row-for-row) at one of two priority classes, over both engines:

* **barrier** submissions settle with the whole answer at once;
* **streamed** submissions deliver rows through the backpressure queue.

Measured per wave: sustained queries/sec and the p50/p99 of end-to-end
latency (queue wait + execution, the client-observable number).  Asserted
per wave -- the serving contract under load:

* **zero cross-query corruption**: every answer is a sub-multiset of *its
  own* query's fault-free reference (a single leaked row from a concurrent
  query, a duplicate, or a torn row fails the wave);
* every submission is admitted and settles (no hangs, no lost futures);
* p99 stays bounded -- overload shows up as queue wait, not as lockup.
"""

from __future__ import annotations

import os
import time
from collections import Counter

from benchmarks.conftest import SRC, build_person_federation  # noqa: F401

#: client counts per wave; the nightly sweep raises this to 1024.
CLIENTS = [int(c) for c in os.environ.get("DISCO_E13_CLIENTS", "64,256").split(",")]
SOURCES = 4
ROWS_PER_SOURCE = 60
WORKERS = 8
FAILURE_PROBABILITY = 0.05
#: four distinguishable answers -- cross-query row leakage is detectable.
THRESHOLDS = [50, 150, 250, 350]
P99_BOUND_SECONDS = 10.0


def query_for(client: int) -> tuple[str, int]:
    threshold = THRESHOLDS[client % len(THRESHOLDS)]
    return f"select x.name from x in person where x.salary > {threshold}", threshold


def fault_free_references() -> dict[int, Counter]:
    """The exact multiset each query must (sub-)answer, from a healthy twin
    federation (same seed, zero failure probability)."""
    mediator = build_person_federation(SOURCES, rows_per_source=ROWS_PER_SOURCE)
    try:
        return {
            threshold: Counter(
                mediator.query(
                    f"select x.name from x in person where x.salary > {threshold}"
                ).rows()
            )
            for threshold in THRESHOLDS
        }
    finally:
        mediator.close()


def run_wave(clients: int, stream: bool, references: dict[int, Counter]) -> dict:
    """One wave: ``clients`` concurrent submissions; returns the wave summary."""
    mediator = build_person_federation(
        SOURCES,
        rows_per_source=ROWS_PER_SOURCE,
        failure_probability=FAILURE_PROBABILITY,
    )
    mediator.executor.config.max_retries = 2
    mediator.executor.config.retry_backoff = 0.0
    server = mediator.serve(
        workers=WORKERS,
        max_queue_depth=None,  # the wave itself is the arrival bound
        stream_buffer_rows=SOURCES * ROWS_PER_SOURCE + 16,  # streams settle unaided
    )
    corrupted = 0
    incomplete = 0
    latencies: list[float] = []
    try:
        started = time.monotonic()
        futures = []
        for client in range(clients):
            text, threshold = query_for(client)
            priority = 3.0 if client % 4 == 0 else 1.0
            futures.append(
                (threshold, server.submit(text, stream=stream, priority=priority))
            )
        for threshold, future in futures:
            if stream:
                rows = list(future.rows())
                future.result(timeout=120)  # settled once the stream drained
            else:
                result = future.result(timeout=120)
                rows = result.rows()
            report = future.report
            assert report is not None and report.verdict == "admitted"
            latencies.append(report.queue_wait + report.execution_time)
            # The integrity check: nothing beyond this query's own answer.
            if Counter(rows) - references[threshold]:
                corrupted += 1
            if Counter(rows) != references[threshold]:
                incomplete += 1  # fault injection struck and retries ran out
        wall = time.monotonic() - started
        stats = server.stats()
    finally:
        server.close()
        mediator.close()
    latencies.sort()
    return {
        "clients": clients,
        "stream": stream,
        "wall": wall,
        "qps": clients / wall,
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))],
        "corrupted": corrupted,
        "incomplete": incomplete,
        "completed": stats["completed"],
        "max_queue_depth": stats["max_queue_depth"],
    }


def test_e13_concurrent_serving_under_faults(benchmark):
    references = fault_free_references()
    waves = []
    for clients in CLIENTS:
        for stream in (False, True):
            waves.append(run_wave(clients, stream, references))

    for wave in waves:
        # The headline invariant: faults degrade answers, never cross wires.
        assert wave["corrupted"] == 0, wave
        assert wave["completed"] == wave["clients"], wave
        assert wave["p99"] < P99_BOUND_SECONDS, wave
        # The worker pool is the in-flight bound; the rest of the wave queued.
        assert wave["max_queue_depth"] <= wave["clients"]

    # With 5% per-call failure and 2 retries, most answers recover fully --
    # the wave is a serving benchmark, not an outage simulation.
    total = sum(wave["clients"] for wave in waves)
    assert sum(wave["incomplete"] for wave in waves) <= total * 0.25

    # Benchmark the smallest barrier wave end to end (fresh federation,
    # faults armed, every answer integrity-checked, server drained).
    summary = benchmark(lambda: run_wave(CLIENTS[0], False, references))
    assert summary["corrupted"] == 0
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["failure_probability"] = FAILURE_PROBABILITY
    for wave in waves:
        mode = "stream" if wave["stream"] else "barrier"
        prefix = f"{mode}_{wave['clients']}"
        benchmark.extra_info[f"{prefix}_qps"] = round(wave["qps"], 1)
        benchmark.extra_info[f"{prefix}_p99_ms"] = round(wave["p99"] * 1000, 2)
        benchmark.extra_info[f"{prefix}_incomplete"] = wave["incomplete"]

"""The paper's motivating application: a federation of water-quality databases.

Many geographically distributed stations measure water quality; every source
has the *same* measurement type, so each new station is one extent declaration
on the shared ``Measurement`` interface.  The example builds a dozen stations
on heterogeneous back-ends (relational, SQL, CSV), federates them under one
mediator, and runs monitoring queries and a reconciliation view across all of
them -- including the ``site*`` style of growth where new stations join
without touching any existing query.

Run with:  python examples/water_quality.py
"""

from __future__ import annotations

import tempfile

from repro import Mediator, RelationalWrapper, SqlWrapper, CsvWrapper
from repro.sources import CsvStore, RelationalEngine, SimulatedServer
from repro.sources.network import NetworkProfile
from repro.sources.sql.engine import SqlEngine
from repro.sources.workload import generate_water_quality_rows

SITES = ["Seine", "Loire", "Rhone", "Garonne", "Marne", "Oise"]


def build_mediator() -> Mediator:
    mediator = Mediator(name="water-quality")
    mediator.define_interface(
        "Measurement",
        [("site", "String"), ("day", "Long"), ("parameter", "String"), ("value", "Float")],
        extent_name="measurements",
    )

    csv_dir = tempfile.mkdtemp(prefix="disco-water-")
    for index, site in enumerate(SITES):
        rows = generate_water_quality_rows(200, site=site, seed=index)
        collection = f"station{index}"
        if index % 3 == 0:
            engine = RelationalEngine(f"{site}-db")
            engine.create_table(collection, rows=rows)
            server = SimulatedServer(site, engine, network=NetworkProfile.lan(seed=index))
            wrapper = RelationalWrapper(f"w{index}", server)
        elif index % 3 == 1:
            engine = SqlEngine(name=f"{site}-sql")
            engine.create_table(collection, rows=rows)
            server = SimulatedServer(site, engine, network=NetworkProfile.wan(seed=index))
            wrapper = SqlWrapper(f"w{index}", server)
        else:
            store = CsvStore(csv_dir, name=f"{site}-files")
            store.write_collection(collection, rows)
            server = SimulatedServer(site, store, network=NetworkProfile.lan(seed=index))
            wrapper = CsvWrapper(f"w{index}", server)
        mediator.register_wrapper(f"w{index}", wrapper)
        mediator.create_repository(f"r{index}", host=f"{site.lower()}.example.org")
        mediator.add_extent(collection, "Measurement", f"w{index}", f"r{index}")
    return mediator


def main() -> None:
    mediator = build_mediator()
    print(f"federated stations: {len(mediator.registry.schema.extents())}")

    high_ph = mediator.query(
        'select struct(site: m.site, value: m.value) from m in measurements '
        'where m.parameter = "ph" and m.value > 9'
    )
    print(f"alkaline readings across every station: {len(high_ph.rows())}")

    per_site = mediator.query(
        'select distinct m.site from m in measurements where m.parameter = "lead"'
    )
    print(f"stations reporting lead measurements: {sorted(per_site.rows())}")

    mediator.define_view(
        "site_max_ph",
        'select struct(site: s, peak: max(select m.value from m in measurements '
        'where m.site = s and m.parameter = "ph")) '
        "from s in (select distinct x.site from x in measurements)",
    )
    peaks = mediator.query("site_max_ph")
    for row in sorted(peaks.rows(), key=lambda r: r["site"]):
        print(f"  {row['site']:10s} peak ph = {row['peak']}")

    total = mediator.query('count(select m from m in measurements)')
    print(f"total measurements federated: {total.data}")


if __name__ == "__main__":
    main()

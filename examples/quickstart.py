"""Quickstart: the paper's running example, end to end.

Builds the two-source Person mediator of Sections 1.2-1.3, runs the
introductory query, shows the optimizer's plan, then takes one source down to
demonstrate partial-answer semantics and re-submission.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Mediator, RelationalWrapper
from repro.sources import RelationalEngine, SimulatedServer


def build_sources() -> tuple[SimulatedServer, SimulatedServer]:
    """Two autonomous 'remote' relational databases."""
    rodin = RelationalEngine("rodin-db")
    rodin.create_table("person0", rows=[{"id": 1, "name": "Mary", "salary": 200}])
    umiacs = RelationalEngine("umiacs-db")
    umiacs.create_table("person1", rows=[{"id": 2, "name": "Sam", "salary": 50}])
    return (
        SimulatedServer(name="rodin", store=rodin),
        SimulatedServer(name="umiacs", store=umiacs),
    )


def build_mediator(server0: SimulatedServer, server1: SimulatedServer) -> Mediator:
    """Everything the DBA declares: wrappers, repositories, one type, two extents."""
    mediator = Mediator(name="quickstart")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server0))
    mediator.register_wrapper("w1", RelationalWrapper("w1", server1))
    mediator.create_repository("r0", host="rodin", address="123.45.6.7")
    mediator.create_repository("r1", host="umiacs")
    mediator.load_odl(
        """
        interface Person (extent person) {
            attribute Long id;
            attribute String name;
            attribute Short salary;
        }
        extent person0 of Person wrapper w0 repository r0;
        extent person1 of Person wrapper w1 repository r1;
        """
    )
    return mediator


def main() -> None:
    server0, server1 = build_sources()
    mediator = build_mediator(server0, server1)

    query = "select x.name from x in person where x.salary > 10"
    print(f"query:   {query}")

    result = mediator.query(query)
    print(f"answer:  {result.data}")
    print(f"logical plan:  {result.logical_plan}")
    print(f"physical plan: {result.physical_plan}")

    print("\n-- taking the rodin source down --")
    server0.take_down()
    partial = mediator.query(query)
    print(f"partial answer (a query!): {partial.partial_query}")
    print(f"unavailable sources:       {list(partial.unavailable_sources)}")

    print("\n-- rodin comes back; re-submitting the partial answer --")
    server0.bring_up()
    recovered = mediator.resubmit(partial)
    print(f"answer:  {recovered.data}")

    print("\n-- adding a third source requires one extent declaration, no query change --")
    extra = RelationalEngine("inria-db")
    extra.create_table("person2", rows=[{"id": 3, "name": "Olga", "salary": 120}])
    server2 = SimulatedServer(name="inria", store=extra)
    mediator.register_wrapper("w2", RelationalWrapper("w2", server2))
    mediator.create_repository("r2", host="inria")
    mediator.add_extent("person2", "Person", "w2", "r2")
    print(f"answer:  {mediator.query(query).data}")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example, end to end.

Builds the two-source Person mediator of Sections 1.2-1.3, runs the
introductory query, shows the optimizer's plan, takes one source down to
demonstrate partial-answer semantics and re-submission, then kills a source
*mid-stream* to show the streaming engine's resume-token recovery.

Execution knobs (`ExecutorConfig`, see the README table): `timeout`,
`max_parallel_calls`, `max_retries`, `retry_backoff`, `degrade_pushdown`,
`resume_midstream`, `replay_resume`, `type_check`.  The first four are
`Mediator(...)` constructor arguments; everything is settable on
`mediator.executor.config`.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Mediator, RelationalWrapper
from repro.sources import RelationalEngine, SimulatedServer


def build_sources() -> tuple[SimulatedServer, SimulatedServer]:
    """Two autonomous 'remote' relational databases."""
    rodin = RelationalEngine("rodin-db")
    rodin.create_table("person0", rows=[{"id": 1, "name": "Mary", "salary": 200}])
    umiacs = RelationalEngine("umiacs-db")
    umiacs.create_table("person1", rows=[{"id": 2, "name": "Sam", "salary": 50}])
    return (
        SimulatedServer(name="rodin", store=rodin),
        SimulatedServer(name="umiacs", store=umiacs),
    )


def build_mediator(server0: SimulatedServer, server1: SimulatedServer) -> Mediator:
    """Everything the DBA declares: wrappers, repositories, one type, two extents."""
    mediator = Mediator(name="quickstart")
    mediator.register_wrapper("w0", RelationalWrapper("w0", server0))
    mediator.register_wrapper("w1", RelationalWrapper("w1", server1))
    mediator.create_repository("r0", host="rodin", address="123.45.6.7")
    mediator.create_repository("r1", host="umiacs")
    mediator.load_odl(
        """
        interface Person (extent person) {
            attribute Long id;
            attribute String name;
            attribute Short salary;
        }
        extent person0 of Person wrapper w0 repository r0;
        extent person1 of Person wrapper w1 repository r1;
        """
    )
    return mediator


def main() -> None:
    server0, server1 = build_sources()
    mediator = build_mediator(server0, server1)

    query = "select x.name from x in person where x.salary > 10"
    print(f"query:   {query}")

    result = mediator.query(query)
    print(f"answer:  {result.data}")
    print(f"logical plan:  {result.logical_plan}")
    print(f"physical plan: {result.physical_plan}")

    print("\n-- taking the rodin source down --")
    server0.take_down()
    partial = mediator.query(query)
    print(f"partial answer (a query!): {partial.partial_query}")
    print(f"unavailable sources:       {list(partial.unavailable_sources)}")

    print("\n-- rodin comes back; re-submitting the partial answer --")
    server0.bring_up()
    recovered = mediator.resubmit(partial)
    print(f"answer:  {recovered.data}")

    print("\n-- adding a third source requires one extent declaration, no query change --")
    extra = RelationalEngine("inria-db")
    extra.create_table("person2", rows=[{"id": 3, "name": "Olga", "salary": 120}])
    server2 = SimulatedServer(name="inria", store=extra)
    mediator.register_wrapper("w2", RelationalWrapper("w2", server2))
    mediator.create_repository("r2", host="inria")
    mediator.add_extent("person2", "Person", "w2", "r2")
    print(f"answer:  {mediator.query(query).data}")

    print("\n-- streaming: rodin's connection drops mid-stream; the resume token recovers it --")
    # Grow rodin's extent so there is a mid-stream to die in, then kill the
    # connection after two rows.  One retry of budget is all the recovery
    # needs; the relational wrapper declares the `token` resume capability,
    # so the reopened call seeks past the two delivered rows *source-side*
    # and ships only the remainder -- every row crosses the wire exactly once.
    server0.store.table("person0").insert_many(
        {"id": 10 + i, "name": f"Colleague{i}", "salary": 80 + i} for i in range(5)
    )
    mediator.executor.config.max_retries = 1
    server0.availability.kill_after(2)
    streamed = mediator.query_stream("select x.name from x in person")
    rows = sorted(streamed.iter_rows())
    report = next(r for r in streamed.reports if r.extent_name == "person0")
    print(f"rows:    {rows}")
    print(f"person0: resumed_calls={report.resumed_calls}, "
          f"replayed_rows={report.replayed_rows}, attempts={report.attempts}")
    print(f"rodin:   rows skipped source-side on resume = "
          f"{server0.statistics.rows_skipped}")

    mediator.close()


if __name__ == "__main__":
    main()

"""The distributed architecture of Figure 1: mediators over mediators.

Two departmental mediators each federate their own heterogeneous sources
(a relational server and a key-value server; a SQL server and a text-search
server).  A top-level organisation mediator federates the two departmental
mediators through :class:`MediatorWrapper`, and a catalog keeps track of every
component.  One OQL query at the top fans out across the whole tree.

Run with:  python examples/federation_of_mediators.py
"""

from __future__ import annotations

from repro import (
    Catalog,
    KeyValueWrapper,
    Mediator,
    MediatorWrapper,
    RelationalWrapper,
    SqlWrapper,
    TextSearchWrapper,
)
from repro.sources import KeyValueStore, RelationalEngine, SimulatedServer, TextStore
from repro.sources.sql.engine import SqlEngine
from repro.sources.text_store import Document
from repro.sources.workload import generate_person_rows


def build_department_a() -> Mediator:
    """Relational + key-value sources."""
    mediator = Mediator(name="dept-a")
    mediator.define_interface(
        "Person", [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    relational = RelationalEngine("a-rel")
    relational.create_table("person0", rows=generate_person_rows(40, seed=1))
    mediator.register_wrapper(
        "w0", RelationalWrapper("w0", SimulatedServer("a-rel-host", relational))
    )
    mediator.create_repository("r0", host="a-rel-host")
    mediator.add_extent("person0", "Person", "w0", "r0")

    kv = KeyValueStore("a-kv")
    kv.create_collection("person1")
    kv.put_many("person1", [(row["id"], row) for row in generate_person_rows(40, seed=2, id_offset=100)])
    mediator.register_wrapper("w1", KeyValueWrapper("w1", SimulatedServer("a-kv-host", kv)))
    mediator.create_repository("r1", host="a-kv-host")
    mediator.add_extent("person1", "Person", "w1", "r1")
    return mediator


def build_department_b() -> Mediator:
    """SQL + text-search sources."""
    mediator = Mediator(name="dept-b")
    mediator.define_interface(
        "Person", [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    sql = SqlEngine(name="b-sql")
    sql.create_table("person2", rows=generate_person_rows(40, seed=3, id_offset=200))
    mediator.register_wrapper("w2", SqlWrapper("w2", SimulatedServer("b-sql-host", sql)))
    mediator.create_repository("r2", host="b-sql-host")
    mediator.add_extent("person2", "Person", "w2", "r2")

    text = TextStore("b-wais")
    text.create_collection("person3")
    for row in generate_person_rows(20, seed=4, id_offset=300):
        text.add_document(
            "person3",
            Document(str(row["id"]), f"profile of {row['name']}", fields=row),
        )
    mediator.register_wrapper(
        "w3", TextSearchWrapper("w3", SimulatedServer("b-wais-host", text))
    )
    mediator.create_repository("r3", host="b-wais-host")
    mediator.add_extent("person3", "Person", "w3", "r3")
    return mediator


def build_organisation(dept_a: Mediator, dept_b: Mediator) -> Mediator:
    mediator = Mediator(name="organisation")
    mediator.define_interface(
        "Person", [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    for label, child in (("a", dept_a), ("b", dept_b)):
        mediator.register_wrapper(f"dept_{label}", MediatorWrapper(f"dept_{label}", child))
        mediator.create_repository(f"repo_{label}", host=f"dept-{label}")
        mediator.add_extent(
            f"people_{label}", "Person", f"dept_{label}", f"repo_{label}",
            source_collection="person",
        )
    return mediator


def main() -> None:
    dept_a = build_department_a()
    dept_b = build_department_b()
    organisation = build_organisation(dept_a, dept_b)

    catalog = Catalog(name="deployment-catalog")
    for mediator in (dept_a, dept_b, organisation):
        catalog.register_mediator(mediator)
    print("catalog overview:", catalog.overview())
    print("mediators serving Person:", catalog.mediators_serving_interface("Person"))

    rich = organisation.query("select x.name from x in person where x.salary > 400")
    print(f"\nhigh earners across the whole organisation: {len(rich.rows())}")

    total = organisation.query("count(select x from x in person)")
    print(f"people known to the organisation mediator: {total.data}")

    per_dept_a = dept_a.query("count(select x from x in person)")
    per_dept_b = dept_b.query("count(select x from x in person)")
    print(f"  dept-a holds {per_dept_a.data}, dept-b holds {per_dept_b.data}")


if __name__ == "__main__":
    main()

"""Partial-evaluation semantics under source failures (paper Section 4).

Federates eight Person sources with a per-request failure probability, runs
the same query repeatedly, and contrasts DISCO's partial answers with the
blocking all-or-nothing baseline: the blocking system's success rate collapses
as sources flake, while DISCO always returns something useful and eventually
converges to the full answer by re-submitting the partial answers it got.

Run with:  python examples/unavailable_sources.py
"""

from __future__ import annotations

from repro import Mediator, RelationalWrapper, Session
from repro.baselines import BlockingSemantics, complete_answer_probability
from repro.sources.workload import WorkloadConfig, build_person_sources

SOURCES = 8
FAILURE_PROBABILITY = 0.15
ATTEMPTS = 20
QUERY = "select x.name from x in person where x.salary > 10"


def build_mediator() -> Mediator:
    servers = build_person_sources(
        WorkloadConfig(
            sources=SOURCES,
            rows_per_source=50,
            failure_probability=FAILURE_PROBABILITY,
            seed=11,
        )
    )
    mediator = Mediator(name="flaky-federation")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    for index, server in enumerate(servers):
        mediator.register_wrapper(f"w{index}", RelationalWrapper(f"w{index}", server))
        mediator.create_repository(f"r{index}", host=server.name)
        mediator.add_extent(f"person{index}", "Person", f"w{index}", f"r{index}")
    return mediator


def main() -> None:
    mediator = build_mediator()
    analytic = complete_answer_probability(1 - FAILURE_PROBABILITY, SOURCES)
    print(f"sources: {SOURCES}, per-request failure probability: {FAILURE_PROBABILITY}")
    print(f"analytic probability a blocking system answers: {analytic:.2f}\n")

    blocking = BlockingSemantics(mediator, raise_on_unavailable=False)
    blocking_answers = sum(blocking.answered(QUERY) for _ in range(ATTEMPTS))
    print(f"blocking baseline answered {blocking_answers}/{ATTEMPTS} attempts")

    partial_count = 0
    complete_count = 0
    for _ in range(ATTEMPTS):
        result = mediator.query(QUERY)
        if result.is_partial:
            partial_count += 1
        else:
            complete_count += 1
    print(
        f"DISCO answered every attempt: {complete_count} complete, "
        f"{partial_count} partial (still usable, still re-submittable)"
    )

    print("\n-- retrying partial answers until complete --")
    session = Session(mediator)
    result = session.query_with_retry(QUERY, retries=10)
    print(f"final answer complete: {result.complete()}, rows: {len(result.rows())}")
    print(f"partial answers seen along the way: {len(session.partial_answers())}")

    if session.partial_answers():
        example = session.partial_answers()[0].partial_query
        print("\nexample partial answer (truncated):")
        print(" ", example[:160] + ("..." if len(example) > 160 else ""))


if __name__ == "__main__":
    main()
